//! A hand-rolled, workspace-wide call graph over the token scanner.
//!
//! The graph indexes every `fn` in the scanned files — free functions,
//! inherent methods, trait methods (declarations and impls) — and every
//! call site, resolved by **name plus receiver-type heuristics**:
//!
//! * `Type::f(…)` / `Self::f(…)` resolve to the associated functions of
//!   that impl type;
//! * `self.f(…)` resolves within the caller's own impl type first;
//! * `recv.f(…)` with an unknown receiver resolves to *every* method of
//!   that name in the workspace (same crate preferred) — a deliberate
//!   over-approximation, so a transitive lint errs towards checking too
//!   much rather than too little;
//! * free calls prefer a shadowing local `fn` nested in the caller, then
//!   the same file, the same crate, and finally the whole workspace.
//!
//! Calls that match nothing land in an explicit **unresolved bucket**
//! (std / vendored-dependency calls, tuple-struct constructors). The
//! interprocedural lints simply do not traverse them — that is the
//! documented blind spot of a zero-dependency graph, pinned by the
//! fixture corpus rather than hidden (see DESIGN.md §9).

use std::collections::HashMap;

use crate::scan::{Tok, TokKind};
use crate::workspace::{FileClass, SourceFile};

/// One function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Index into the file list the graph was built over.
    pub file: usize,
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `pub` (any restriction: `pub(crate)` counts as pub).
    pub is_pub: bool,
    /// The impl type for inherent and trait-impl methods.
    pub self_ty: Option<String>,
    /// The trait, for trait-impl methods and `trait { … }` declarations.
    pub trait_name: Option<String>,
    /// Declared inside a `trait { … }` block (possibly with a default
    /// body) rather than an impl.
    pub is_trait_decl: bool,
    /// Token range `[open_brace, close_brace]` of the body, when present.
    pub body: Option<(usize, usize)>,
    /// The declared return type mentions `Result`.
    pub returns_result: bool,
    /// Defined inside a non-`pub` inline `mod`.
    pub in_private_mod: bool,
    /// Test-gated (by `#[cfg(test)]`/`#[test]` mask or a Test-class file).
    pub is_test: bool,
}

/// The syntactic shape of a call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `f(…)` — a free call.
    Free,
    /// `recv.f(…)` — a method call; `recv` is the identifier immediately
    /// before the dot, when there is one (`self`, a local, a field).
    Method { recv: Option<String> },
    /// `Qual::f(…)` — a path call; `qual` is the last path segment before
    /// the function name (`Vec`, `Self`, a module).
    Path { qual: String },
}

/// One call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index into the file list.
    pub file: usize,
    /// The innermost enclosing function definition, if any.
    pub caller: Option<usize>,
    /// Token index of the callee name.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    /// The callee name as written.
    pub name: String,
    /// Free / method / path.
    pub kind: CallKind,
    /// Resolved candidate definitions (empty = unresolved bucket).
    pub targets: Vec<usize>,
    /// The call sits in test-gated code.
    pub is_test: bool,
}

/// The call graph over a set of scanned files.
pub struct CallGraph<'a> {
    /// The files the graph was built over, in index order.
    pub files: Vec<&'a SourceFile>,
    /// Every function definition.
    pub fns: Vec<FnDef>,
    /// Every call site.
    pub calls: Vec<CallSite>,
    /// Per function, the indices of the call sites inside its body.
    pub calls_by_fn: Vec<Vec<usize>>,
    by_name: HashMap<String, Vec<usize>>,
}

/// Identifiers that look like calls but never are.
const NON_CALLS: [&str; 24] = [
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "mut", "ref", "move",
    "break", "continue", "unsafe", "else", "await", "fn", "where", "impl", "dyn", "Some", "Ok",
    "Err",
];

/// What an opening brace belongs to, for the definition walker.
#[derive(Debug, Clone)]
enum Scope {
    Impl {
        self_ty: Option<String>,
        trait_name: Option<String>,
    },
    Trait {
        name: String,
    },
    Mod {
        is_pub: bool,
    },
    Fn {
        id: usize,
        open: usize,
    },
    Other,
}

impl<'a> CallGraph<'a> {
    /// Builds the graph over `files` (definition pass per file, then one
    /// resolution pass over all call sites).
    pub fn build(files: &[&'a SourceFile]) -> CallGraph<'a> {
        let mut graph = CallGraph {
            files: files.to_vec(),
            fns: Vec::new(),
            calls: Vec::new(),
            calls_by_fn: Vec::new(),
            by_name: HashMap::new(),
        };
        for (fi, file) in files.iter().enumerate() {
            graph.scan_file(fi, file);
        }
        graph.calls_by_fn = vec![Vec::new(); graph.fns.len()];
        for (fid, f) in graph.fns.iter().enumerate() {
            graph.by_name.entry(f.name.clone()).or_default().push(fid);
        }
        for ci in 0..graph.calls.len() {
            let targets = graph.resolve(&graph.calls[ci]);
            if let Some(caller) = graph.calls[ci].caller {
                graph.calls_by_fn[caller].push(ci);
            }
            graph.calls[ci].targets = targets;
        }
        graph
    }

    /// All definitions named `name`.
    pub fn fns_by_name(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// The call sites that resolved to nothing — the unresolved bucket.
    pub fn unresolved(&self) -> impl Iterator<Item = &CallSite> {
        self.calls.iter().filter(|c| c.targets.is_empty())
    }

    /// Resolver coverage per crate: `(crate, resolved, unresolved)`
    /// non-test call-site counts, sorted by crate name (`(root)` for the
    /// facade package). Surfaced by `--self-test` and the cost-matrix
    /// JSON so a resolver regression — which silently weakens every
    /// graph-based lint — shows up as a number, not as missing findings.
    pub fn resolution_coverage(&self) -> Vec<(String, u64, u64)> {
        let mut by_crate: HashMap<String, (u64, u64)> = HashMap::new();
        for call in &self.calls {
            if call.is_test {
                continue;
            }
            let krate = self.files[call.file]
                .crate_dir
                .clone()
                .unwrap_or_else(|| "(root)".to_string());
            let entry = by_crate.entry(krate).or_default();
            if call.targets.is_empty() {
                entry.1 += 1;
            } else {
                entry.0 += 1;
            }
        }
        let mut out: Vec<(String, u64, u64)> =
            by_crate.into_iter().map(|(k, (r, u))| (k, r, u)).collect();
        out.sort();
        out
    }

    /// Whether an interprocedural traversal should follow `call` to
    /// `target`.
    ///
    /// Free and path calls resolve by name and type, so they are followed
    /// as-is. A method call on an arbitrary receiver over-approximates to
    /// every same-named workspace method, and common names (`insert`,
    /// `wait`, `clear`) would drag a traversal across crates through std
    /// receivers; `self.` dispatch is exact, same-crate candidates are
    /// plausible, and cross-crate method hops are dropped — each layer
    /// declares its own roots over its own kernels (DESIGN.md §9).
    pub fn trusts(&self, call: &CallSite, target: usize) -> bool {
        match &call.kind {
            CallKind::Free | CallKind::Path { .. } => true,
            CallKind::Method { recv } => {
                recv.as_deref() == Some("self")
                    || self.files[self.fns[target].file].crate_dir
                        == self.files[call.file].crate_dir
            }
        }
    }

    /// The trusted, non-test out-edges of `fid` as `(call index, target)`
    /// pairs — the exact edge set every effect traversal walks.
    pub fn trusted_edges(&self, fid: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for &ci in &self.calls_by_fn[fid] {
            let call = &self.calls[ci];
            if call.is_test {
                continue;
            }
            for &t in &call.targets {
                if self.trusts(call, t) {
                    out.push((ci, t));
                }
            }
        }
        out
    }

    /// Strongly connected components over the trusted, non-test edges,
    /// callees first: every SCC is emitted before any SCC that calls into
    /// it — exactly the order a bottom-up effect fixed point wants.
    ///
    /// Iterative Tarjan (explicit DFS frames), so a deep call chain in a
    /// scanned file cannot overflow the analyzer's own stack.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.fns.len();
        let succ: Vec<Vec<usize>> = (0..n)
            .map(|f| self.trusted_edges(f).into_iter().map(|(_, t)| t).collect())
            .collect();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next = 0usize;
        let mut out: Vec<Vec<usize>> = Vec::new();
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(frame) = frames.last_mut() {
                let (v, ei) = *frame;
                if ei == 0 {
                    index[v] = next;
                    low[v] = next;
                    next += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if let Some(&w) = succ[v].get(ei) {
                    frame.1 += 1;
                    if index[w] == usize::MAX {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(p, _)) = frames.last() {
                        low[p] = low[p].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        out.push(comp);
                    }
                }
            }
        }
        out
    }

    /// One pass over one file: function definitions and raw call sites.
    fn scan_file(&mut self, fi: usize, file: &SourceFile) {
        let toks = &file.scanned.toks;
        let file_is_test = file.class == FileClass::Test;
        let mut stack: Vec<Scope> = Vec::new();
        let mut pending: Option<Scope> = None;
        let mut bracket_depth = 0i64;
        let mut i = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            if t.is_punct('[') {
                bracket_depth += 1;
            } else if t.is_punct(']') {
                bracket_depth -= 1;
            } else if t.is_punct('{') {
                stack.push(pending.take().unwrap_or(Scope::Other));
            } else if t.is_punct('}') {
                if let Some(Scope::Fn { id, open }) = stack.pop() {
                    self.fns[id].body = Some((open, i));
                }
            } else if t.is_punct(';') && bracket_depth == 0 {
                // `mod m;`, `fn f(…);` (trait decl), `impl T {}` can't end
                // in `;` — a pending scope that meets one died bodiless.
                pending = None;
            } else if t.is_ident("impl")
                && !in_fn(&stack)
                && !matches!(pending, Some(Scope::Fn { .. }))
            {
                // The pending-Fn guard keeps `impl Trait` in a signature
                // (`fn f(v: impl FnMut(…))`, `-> impl Iterator`) from
                // clobbering the fn's scope before its body brace arrives.
                pending = Some(parse_impl_header(toks, i));
            } else if t.is_ident("trait")
                && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
                && !in_fn(&stack)
            {
                pending = Some(Scope::Trait {
                    name: toks[i + 1].text.clone(),
                });
            } else if t.is_ident("mod") && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
            {
                pending = Some(Scope::Mod {
                    is_pub: is_pub_before(toks, i),
                });
            } else if t.is_ident("fn") {
                if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                    let (self_ty, trait_name, is_trait_decl) = enclosing_impl(&stack);
                    let id = self.fns.len();
                    self.fns.push(FnDef {
                        file: fi,
                        name: name.text.clone(),
                        line: t.line,
                        is_pub: is_pub_before(toks, i),
                        self_ty,
                        trait_name,
                        is_trait_decl,
                        body: None,
                        returns_result: signature_returns_result(toks, i + 1),
                        in_private_mod: stack
                            .iter()
                            .any(|s| matches!(s, Scope::Mod { is_pub: false })),
                        is_test: file_is_test || file.test_mask[i],
                    });
                    pending = Some(Scope::Fn { id, open: 0 });
                }
            } else if t.kind == TokKind::Ident
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && !NON_CALLS.contains(&t.text.as_str())
                && !(i >= 1 && toks[i - 1].is_ident("fn"))
            {
                let kind = if i >= 1 && toks[i - 1].is_punct('.') {
                    CallKind::Method {
                        recv: (i >= 2 && toks[i - 2].kind == TokKind::Ident)
                            .then(|| toks[i - 2].text.clone()),
                    }
                } else if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
                    CallKind::Path {
                        qual: if i >= 3 && toks[i - 3].kind == TokKind::Ident {
                            toks[i - 3].text.clone()
                        } else {
                            String::new()
                        },
                    }
                } else {
                    CallKind::Free
                };
                self.calls.push(CallSite {
                    file: fi,
                    caller: innermost_fn(&stack),
                    tok: i,
                    line: t.line,
                    name: t.text.clone(),
                    kind,
                    targets: Vec::new(),
                    is_test: file_is_test || file.test_mask[i],
                });
            }
            // Patch the body-open token index once the fn's `{` arrives.
            if t.is_punct('{') {
                if let Some(Scope::Fn { id, open }) = stack.last_mut() {
                    if *open == 0 && self.fns[*id].body.is_none() {
                        *open = i;
                    }
                }
            }
            i += 1;
        }
    }

    /// Resolves one call site to candidate definitions.
    fn resolve(&self, call: &CallSite) -> Vec<usize> {
        let all = self.fns_by_name(&call.name);
        if all.is_empty() {
            return Vec::new();
        }
        let caller = call.caller.map(|c| &self.fns[c]);
        let file = self.files[call.file];
        match &call.kind {
            CallKind::Free => {
                let frees: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&f| self.fns[f].self_ty.is_none() && !self.fns[f].is_trait_decl)
                    .collect();
                // A nested `fn` inside the caller shadows everything.
                if let (Some(ck), Some((b0, b1))) = (call.caller, caller.and_then(|c| c.body)) {
                    let nested: Vec<usize> = frees
                        .iter()
                        .copied()
                        .filter(|&f| {
                            f != ck
                                && self.fns[f].file == call.file
                                && self.fns[f].body.is_some_and(|(o, c)| o > b0 && c < b1)
                        })
                        .collect();
                    if !nested.is_empty() {
                        return nested;
                    }
                }
                prefer(
                    &frees,
                    |f| self.fns[f].file == call.file,
                    |f| self.files[self.fns[f].file].crate_dir == file.crate_dir,
                )
            }
            CallKind::Path { qual } => {
                // `Self::f(…)` inside a trait's *default body* has no impl
                // type to name — the trait itself scopes the call, so it
                // resolves to that trait's declarations and impl methods
                // (an over-approximation across implementors, like method
                // dispatch on an unknown receiver).
                if qual == "Self" {
                    if let Some(c) = caller.filter(|c| c.self_ty.is_none()) {
                        if let Some(tr) = c.trait_name.as_deref() {
                            let in_trait: Vec<usize> = all
                                .iter()
                                .copied()
                                .filter(|&f| self.fns[f].trait_name.as_deref() == Some(tr))
                                .collect();
                            return prefer(
                                &in_trait,
                                |f| self.files[self.fns[f].file].crate_dir == file.crate_dir,
                                |_| true,
                            );
                        }
                    }
                }
                let want_ty = if qual == "Self" {
                    caller.and_then(|c| c.self_ty.clone())
                } else if qual.chars().next().is_some_and(char::is_uppercase) {
                    Some(qual.clone())
                } else {
                    None
                };
                match want_ty {
                    Some(ty) => {
                        let methods: Vec<usize> = all
                            .iter()
                            .copied()
                            .filter(|&f| self.fns[f].self_ty.as_deref() == Some(ty.as_str()))
                            .collect();
                        prefer(
                            &methods,
                            |f| self.files[self.fns[f].file].crate_dir == file.crate_dir,
                            |_| true,
                        )
                    }
                    None => {
                        // Module path (`scan::test_mask`): a free fn.
                        let frees: Vec<usize> = all
                            .iter()
                            .copied()
                            .filter(|&f| {
                                self.fns[f].self_ty.is_none() && !self.fns[f].is_trait_decl
                            })
                            .collect();
                        prefer(
                            &frees,
                            |f| self.files[self.fns[f].file].crate_dir == file.crate_dir,
                            |_| true,
                        )
                    }
                }
            }
            CallKind::Method { recv } => {
                // `self.f()` resolves within the caller's own type first.
                if recv.as_deref() == Some("self") {
                    if let Some(ty) = caller.and_then(|c| c.self_ty.as_deref()) {
                        let own: Vec<usize> = all
                            .iter()
                            .copied()
                            .filter(|&f| self.fns[f].self_ty.as_deref() == Some(ty))
                            .collect();
                        if !own.is_empty() {
                            return own;
                        }
                    }
                }
                // Unknown receiver: every method of that name (trait
                // declarations included — their `Result`-ness matters for
                // the swallowed-result lint even without a body).
                let methods: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&f| self.fns[f].self_ty.is_some() || self.fns[f].is_trait_decl)
                    .collect();
                prefer(
                    &methods,
                    |f| self.files[self.fns[f].file].crate_dir == file.crate_dir,
                    |_| true,
                )
            }
        }
    }
}

/// Restricts `candidates` to those matching `first` when any do, else to
/// those matching `second` when any do, else keeps them all.
fn prefer(
    candidates: &[usize],
    first: impl Fn(usize) -> bool,
    second: impl Fn(usize) -> bool,
) -> Vec<usize> {
    for filt in [&first as &dyn Fn(usize) -> bool, &second] {
        let hits: Vec<usize> = candidates.iter().copied().filter(|&f| filt(f)).collect();
        if !hits.is_empty() {
            return hits;
        }
    }
    candidates.to_vec()
}

fn in_fn(stack: &[Scope]) -> bool {
    stack.iter().any(|s| matches!(s, Scope::Fn { .. }))
}

fn innermost_fn(stack: &[Scope]) -> Option<usize> {
    stack.iter().rev().find_map(|s| match s {
        Scope::Fn { id, .. } => Some(*id),
        _ => None,
    })
}

fn enclosing_impl(stack: &[Scope]) -> (Option<String>, Option<String>, bool) {
    for s in stack.iter().rev() {
        match s {
            Scope::Impl {
                self_ty,
                trait_name,
            } => return (self_ty.clone(), trait_name.clone(), false),
            Scope::Trait { name } => return (None, Some(name.clone()), true),
            Scope::Fn { .. } => return (None, None, false),
            _ => {}
        }
    }
    (None, None, false)
}

/// True when the tokens before `idx` say `pub` (with any restriction),
/// looking back over the other item modifiers.
fn is_pub_before(toks: &[Tok], idx: usize) -> bool {
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_ident("unsafe")
            || t.is_ident("const")
            || t.is_ident("async")
            || t.is_ident("extern")
            || t.kind == TokKind::Literal
        {
            continue;
        }
        if t.is_punct(')') {
            // A `pub(crate)` / `pub(super)` restriction: hop the parens.
            while j > 0 && !toks[j].is_punct('(') {
                j -= 1;
            }
            continue;
        }
        return t.is_ident("pub");
    }
    false
}

/// Parses `impl [<…>] [Trait for] Type` into an [`Scope::Impl`].
fn parse_impl_header(toks: &[Tok], impl_idx: usize) -> Scope {
    let mut j = impl_idx + 1;
    // Skip the generic parameter list, `->` arrows inside it included.
    if toks.get(j).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i64;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !(j >= 1 && toks[j - 1].is_punct('-')) {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Collect the last identifier at angle-depth 0 of each side of `for`.
    let mut first: Option<String> = None;
    let mut second: Option<String> = None;
    let mut saw_for = false;
    let mut depth = 0i64;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') || (t.is_ident("where") && depth == 0) {
            break;
        }
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !(j >= 1 && toks[j - 1].is_punct('-')) {
            depth -= 1;
        } else if t.is_ident("for") && depth == 0 {
            saw_for = true;
        } else if t.kind == TokKind::Ident && depth == 0 && !t.is_ident("dyn") {
            let slot = if saw_for { &mut second } else { &mut first };
            *slot = Some(t.text.clone());
        }
        j += 1;
    }
    if saw_for {
        Scope::Impl {
            self_ty: second,
            trait_name: first,
        }
    } else {
        Scope::Impl {
            self_ty: first,
            trait_name: None,
        }
    }
}

/// True when the signature starting at the fn name token declares a
/// `Result` return type.
fn signature_returns_result(toks: &[Tok], name_idx: usize) -> bool {
    let mut j = name_idx + 1;
    // Skip generics on the fn itself.
    if toks.get(j).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i64;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !(j >= 1 && toks[j - 1].is_punct('-')) {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Skip the parameter list.
    if !toks.get(j).is_some_and(|t| t.is_punct('(')) {
        return false;
    }
    let mut depth = 0i64;
    while j < toks.len() {
        if toks[j].is_punct('(') {
            depth += 1;
        } else if toks[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                j += 1;
                break;
            }
        }
        j += 1;
    }
    // Return type runs to the body brace, a `;`, or a `where` clause.
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') || t.is_punct(';') || t.is_ident("where") {
            return false;
        }
        if t.is_ident("Result") {
            return true;
        }
        j += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::FileClass;

    fn file(rel: &str, crate_dir: &str, src: &str) -> SourceFile {
        SourceFile::new(
            rel.to_string(),
            FileClass::Lib,
            Some(crate_dir.to_string()),
            src,
        )
    }

    fn graph<'a>(files: &[&'a SourceFile]) -> CallGraph<'a> {
        CallGraph::build(files)
    }

    fn fn_named<'g>(g: &'g CallGraph<'_>, name: &str) -> &'g FnDef {
        let ids = g.fns_by_name(name);
        assert_eq!(ids.len(), 1, "expected one fn named {name}");
        &g.fns[ids[0]]
    }

    fn call_named<'g>(g: &'g CallGraph<'_>, name: &str) -> &'g CallSite {
        g.calls
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("no call site named {name}"))
    }

    #[test]
    fn free_fns_methods_and_traits_are_indexed() {
        let f = file(
            "crates/a/src/lib.rs",
            "a",
            "pub fn free() {}\n\
             struct S;\n\
             impl S { fn inherent(&self) {} }\n\
             trait T { fn decl(&self); fn with_default(&self) {} }\n\
             impl T for S { fn decl(&self) {} }\n",
        );
        let g = graph(&[&f]);
        assert!(fn_named(&g, "free").is_pub);
        assert_eq!(fn_named(&g, "inherent").self_ty.as_deref(), Some("S"));
        let decls = g.fns_by_name("decl");
        assert_eq!(decls.len(), 2);
        assert!(g.fns[decls[0]].is_trait_decl);
        assert!(g.fns[decls[0]].body.is_none());
        assert_eq!(g.fns[decls[1]].self_ty.as_deref(), Some("S"));
        assert_eq!(g.fns[decls[1]].trait_name.as_deref(), Some("T"));
        assert!(fn_named(&g, "with_default").is_trait_decl);
        assert!(fn_named(&g, "with_default").body.is_some());
    }

    #[test]
    fn result_return_is_detected() {
        let f = file(
            "crates/a/src/lib.rs",
            "a",
            "fn fallible() -> Result<u32, String> { Ok(1) }\n\
             fn plain() -> u32 { 1 }\n\
             fn arr() -> [u8; 4] { [0; 4] }\n",
        );
        let g = graph(&[&f]);
        assert!(fn_named(&g, "fallible").returns_result);
        assert!(!fn_named(&g, "plain").returns_result);
        assert!(!fn_named(&g, "arr").returns_result);
    }

    #[test]
    fn self_method_calls_resolve_to_own_impl() {
        let f = file(
            "crates/a/src/lib.rs",
            "a",
            "struct A; struct B;\n\
             impl A { fn go(&self) { self.step(); } fn step(&self) {} }\n\
             impl B { fn step(&self) {} }\n",
        );
        let g = graph(&[&f]);
        let call = call_named(&g, "step");
        assert_eq!(call.targets.len(), 1);
        assert_eq!(g.fns[call.targets[0]].self_ty.as_deref(), Some("A"));
    }

    #[test]
    fn unknown_receiver_over_approximates_to_all_methods() {
        let f = file(
            "crates/a/src/lib.rs",
            "a",
            "struct A; struct B;\n\
             impl A { fn step(&self) {} }\n\
             impl B { fn step(&self) {} }\n\
             fn drive(x: &A) { x.step(); }\n",
        );
        let g = graph(&[&f]);
        let call = call_named(&g, "step");
        assert_eq!(call.targets.len(), 2, "trait-style dispatch: both impls");
    }

    #[test]
    fn shadowed_local_fn_wins_over_same_file_free_fn() {
        let f = file(
            "crates/a/src/lib.rs",
            "a",
            "fn helper() {}\n\
             fn outer() { fn helper() {} helper(); }\n",
        );
        let g = graph(&[&f]);
        let call = call_named(&g, "helper");
        assert_eq!(call.targets.len(), 1);
        let t = &g.fns[call.targets[0]];
        let outer = fn_named(&g, "outer");
        let (b0, b1) = outer.body.unwrap();
        let (o, c) = t.body.unwrap();
        assert!(o > b0 && c < b1, "resolved to the nested shadow");
    }

    #[test]
    fn impl_trait_in_signature_keeps_the_body() {
        // `impl FnMut(…)` in a parameter list (or `-> impl Iterator`) must
        // not clobber the pending fn scope: the body brace still belongs
        // to the fn, and its call sites stay attributed.
        let f = file(
            "crates/a/src/lib.rs",
            "a",
            "fn visit_all(mut visit: impl FnMut(u64, &str)) -> impl Iterator<Item = u8> {\n\
                 helper();\n\
                 std::iter::empty()\n\
             }\n\
             fn helper() {}\n",
        );
        let g = graph(&[&f]);
        let def = fn_named(&g, "visit_all");
        assert!(def.body.is_some(), "impl-Trait param lost the fn body");
        let call = call_named(&g, "helper");
        assert_eq!(
            call.caller,
            Some(g.fns.iter().position(|d| d.name == "visit_all").unwrap())
        );
    }

    #[test]
    fn cross_crate_calls_resolve_when_unique() {
        let a = file("crates/a/src/lib.rs", "a", "pub fn shared_util() {}\n");
        let b = file(
            "crates/b/src/lib.rs",
            "b",
            "fn use_it() { shared_util(); }\n",
        );
        let g = graph(&[&a, &b]);
        let call = call_named(&g, "shared_util");
        assert_eq!(call.targets.len(), 1);
        assert_eq!(g.fns[call.targets[0]].file, 0);
    }

    #[test]
    fn same_crate_candidates_are_preferred() {
        let a = file("crates/a/src/lib.rs", "a", "pub fn util() {}\n");
        let b = file(
            "crates/b/src/lib.rs",
            "b",
            "pub fn util() {}\nfn use_it() { util(); }\n",
        );
        let g = graph(&[&a, &b]);
        let call = call_named(&g, "util");
        assert_eq!(call.targets.len(), 1);
        assert_eq!(
            g.fns[call.targets[0]].file, 1,
            "same file beats cross-crate"
        );
    }

    #[test]
    fn path_calls_resolve_through_the_impl_type() {
        let f = file(
            "crates/a/src/lib.rs",
            "a",
            "struct S;\n\
             impl S {\n\
               fn new() -> S { S }\n\
               fn pair() -> (S, S) { (Self::new(), S::new()) }\n\
             }\n\
             struct Other; impl Other { fn new() -> Other { Other } }\n",
        );
        let g = graph(&[&f]);
        let news: Vec<&CallSite> = g.calls.iter().filter(|c| c.name == "new").collect();
        assert_eq!(news.len(), 2);
        for c in news {
            assert_eq!(c.targets.len(), 1, "{:?}", c.kind);
            assert_eq!(g.fns[c.targets[0]].self_ty.as_deref(), Some("S"));
        }
    }

    #[test]
    fn std_calls_land_in_the_unresolved_bucket() {
        let f = file(
            "crates/a/src/lib.rs",
            "a",
            "fn go() { let v = Vec::<u8>::with_capacity(4); drop(v); String::from(\"x\"); }\n",
        );
        let g = graph(&[&f]);
        let unresolved: Vec<&str> = g.unresolved().map(|c| c.name.as_str()).collect();
        assert!(unresolved.contains(&"with_capacity"), "{unresolved:?}");
        assert!(unresolved.contains(&"from"), "{unresolved:?}");
    }

    #[test]
    fn private_mod_and_test_flags() {
        let f = file(
            "crates/a/src/lib.rs",
            "a",
            "mod inner { pub fn hidden() {} }\n\
             pub mod outer { pub fn shown() {} }\n\
             #[cfg(test)]\nmod tests { fn t() {} }\n",
        );
        let g = graph(&[&f]);
        assert!(fn_named(&g, "hidden").in_private_mod);
        assert!(!fn_named(&g, "shown").in_private_mod);
        assert!(fn_named(&g, "t").is_test);
    }

    #[test]
    fn self_calls_in_trait_default_bodies_resolve() {
        let f = file(
            "crates/a/src/lib.rs",
            "a",
            "trait T {\n\
               fn t_helper() -> u32 { 7 }\n\
               fn go() -> u32 { Self::t_helper() }\n\
             }\n\
             struct S;\n\
             impl T for S { fn t_helper() -> u32 { 9 } }\n",
        );
        let g = graph(&[&f]);
        let call = call_named(&g, "t_helper");
        assert_eq!(
            call.kind,
            CallKind::Path {
                qual: "Self".to_string()
            }
        );
        assert_eq!(
            call.targets.len(),
            2,
            "trait default + impl override, not the unresolved bucket"
        );
        assert!(call
            .targets
            .iter()
            .all(|&t| g.fns[t].trait_name.as_deref() == Some("T")));
    }

    #[test]
    fn sccs_come_out_callees_first() {
        let f = file(
            "crates/a/src/lib.rs",
            "a",
            "fn a() { b(); }\n\
             fn b() { a(); leaf(); }\n\
             fn leaf() {}\n",
        );
        let g = graph(&[&f]);
        let sccs = g.sccs();
        assert_eq!(sccs.len(), 2);
        let pos = |name: &str| {
            sccs.iter()
                .position(|c| c.iter().any(|&f| g.fns[f].name == name))
                .unwrap()
        };
        assert!(pos("leaf") < pos("a"), "callee SCC emitted first");
        assert_eq!(pos("a"), pos("b"), "the a↔b cycle is one component");
        assert_eq!(sccs[pos("a")].len(), 2);
    }

    #[test]
    fn cross_crate_method_hops_are_untrusted() {
        let a = file(
            "crates/a/src/lib.rs",
            "a",
            "pub struct W; impl W { pub fn wait(&self) {} }\n",
        );
        let b = file(
            "crates/b/src/lib.rs",
            "b",
            "struct Own; impl Own {\n\
               fn wait(&self) {}\n\
               fn go(&self, cv: &W) { self.wait(); cv.wait(); }\n\
             }\n",
        );
        let g = graph(&[&a, &b]);
        let calls: Vec<&CallSite> = g.calls.iter().filter(|c| c.name == "wait").collect();
        assert_eq!(calls.len(), 2);
        for c in calls {
            let CallKind::Method { recv } = &c.kind else {
                panic!("method call expected");
            };
            for &t in &c.targets {
                let same_crate = g.files[g.fns[t].file].crate_dir == g.files[c.file].crate_dir;
                assert_eq!(
                    g.trusts(c, t),
                    recv.as_deref() == Some("self") || same_crate,
                    "recv={recv:?} target in {:?}",
                    g.files[g.fns[t].file].rel
                );
            }
        }
    }

    #[test]
    fn calls_attach_to_the_innermost_fn_including_closures() {
        let f = file(
            "crates/a/src/lib.rs",
            "a",
            "fn target() {}\n\
             fn outer() { let c = || { target(); }; c(); }\n",
        );
        let g = graph(&[&f]);
        let call = call_named(&g, "target");
        let caller = call.caller.expect("has caller");
        assert_eq!(g.fns[caller].name, "outer");
    }
}
