//! Loop-nest reconstruction and symbolic page-I/O bounds for the `cost`
//! lint.
//!
//! Two halves, both zero-dependency:
//!
//! 1. A tiny **bound-expression parser** for the `// COST: <expr> pages`
//!    contract grammar (sums of products over integer literals and named
//!    symbolic quantities, with parentheses). The *degree* of an
//!    expression — the maximum number of symbolic factors multiplied
//!    together in any term — is the static complexity a contract
//!    declares: `1` has degree 0, `sig_pages` degree 1,
//!    `slices * pages_per_slice + oid_pages` degree 2.
//!
//! 2. A **loop-nest analyzer** over the workspace [`CallGraph`]: for each
//!    fn it finds every page-I/O call site, reconstructs the `for` /
//!    `while` / `loop` nesting lexically around it (bounds named from
//!    range ends, `.len()` and `.chunks()` patterns), and computes the
//!    fn's *I/O depth* — the deepest loop nest any page read sits under,
//!    plus what the callee itself contributes.
//!
//! # What counts as a page-I/O call site
//!
//! The effect inference deliberately stops `RAW_IO` at the crate
//! boundary (cross-crate method hops are untrusted, DESIGN.md §9), so
//! the engines' scan loops never *infer* `RAW_IO` even though every
//! `sig_file.read(…)` is a page read. The cost analysis instead
//! recognizes I/O sites by an explicit precedence ladder (first match
//! wins; write-side I/O is out of scope — contracts bound *retrieval*
//! cost, the paper's `rc`, not Table-7 update costs):
//!
//! 1. a call named `read_page` — the accounting primitive itself;
//! 2. a call any of whose resolved targets carries a `// COST:`
//!    contract — the callee's promise is the contribution (contracts
//!    compose; traversal stops);
//! 3. a call resolving into `crates/pagestore` whose target reads pages
//!    — the storage seam (`PagedFile::read`, `read_blob`, …), followed
//!    across the crate boundary by design;
//! 4. a `self.`-dispatched or free/path call whose target reads pages —
//!    exact same-fn-family recursion through workspace helpers;
//! 5. a non-`self` method call whose target set is a *single* trusted
//!    same-crate fn that reads pages — unambiguous field dispatch like
//!    `tree.lookup(…)`.
//!
//! Ambiguous non-`self` method calls (`.get(…)` resolving to both
//! `Bitmap::get` and `OidFile::get`) are dropped rather than
//! over-approximated: a false I/O site would fail honest contracts all
//! over the workspace. The blind spots this buys are documented in
//! DESIGN.md §12.
//!
//! # Blind spots (deliberate)
//!
//! * Iterator-adapter loops (`.map(…)`, `.for_each(…)`) do not add a
//!   nesting level; only `for` / `while` / `loop` do. The scan engines
//!   use explicit loops on their I/O paths (enforced de facto by the
//!   drift gate).
//! * Recursive cycles contribute depth 0 (cut at the back edge).
//! * `while` bounds are opaque; they are named `?<ident>` after the
//!   first identifier in the condition and count one level.
//! * A loop annotated `// COST-SPLIT: <sym>` (on the loop keyword's line
//!   or up to three lines above) is a *work-partitioning* fan-out — its
//!   iterations claim disjoint items off a shared queue — and adds no
//!   nesting level. The drift evaluator's measured-pages-vs-contract
//!   assertion backstops the claim dynamically.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::callgraph::{CallGraph, CallKind};
use crate::lints::hot_path;
use crate::scan::{Tok, TokKind};

/// A parsed bound expression: sums of products over integer literals and
/// named symbolic quantities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// An integer literal.
    Num(u64),
    /// A named symbolic quantity (`slices`, `pages_per_slice`, …).
    Sym(String),
    /// `lhs + rhs`.
    Add(Box<Expr>, Box<Expr>),
    /// `lhs * rhs`.
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// The polynomial degree: the maximum number of symbolic factors
    /// multiplied together in any term.
    pub fn degree(&self) -> u32 {
        match self {
            Expr::Num(_) => 0,
            Expr::Sym(_) => 1,
            Expr::Add(a, b) => a.degree().max(b.degree()),
            Expr::Mul(a, b) => a.degree() + b.degree(),
        }
    }

    /// Every distinct symbol, in first-appearance order.
    pub fn symbols(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols<'e>(&'e self, out: &mut Vec<&'e str>) {
        match self {
            Expr::Num(_) => {}
            Expr::Sym(s) => {
                if !out.contains(&s.as_str()) {
                    out.push(s);
                }
            }
            Expr::Add(a, b) | Expr::Mul(a, b) => {
                a.collect_symbols(out);
                b.collect_symbols(out);
            }
        }
    }

    /// Evaluates with `resolve` supplying every symbol's value; errors on
    /// the first unknown symbol.
    pub fn eval(&self, resolve: &dyn Fn(&str) -> Option<f64>) -> Result<f64, String> {
        match self {
            Expr::Num(n) => Ok(*n as f64),
            Expr::Sym(s) => resolve(s).ok_or_else(|| format!("unknown symbol `{s}`")),
            Expr::Add(a, b) => Ok(a.eval(resolve)? + b.eval(resolve)?),
            Expr::Mul(a, b) => Ok(a.eval(resolve)? * b.eval(resolve)?),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(n) => write!(f, "{n}"),
            Expr::Sym(s) => f.write_str(s),
            Expr::Add(a, b) => write!(f, "{a} + {b}"),
            Expr::Mul(a, b) => {
                // Parenthesize sums under a product so the rendering
                // round-trips through the parser.
                let pa = matches!(**a, Expr::Add(..));
                let pb = matches!(**b, Expr::Add(..));
                match (pa, pb) {
                    (true, true) => write!(f, "({a}) * ({b})"),
                    (true, false) => write!(f, "({a}) * {b}"),
                    (false, true) => write!(f, "{a} * ({b})"),
                    (false, false) => write!(f, "{a} * {b}"),
                }
            }
        }
    }
}

/// Parses `expr := term ('+' term)*; term := factor ('*' factor)*;
/// factor := integer | identifier | '(' expr ')'`.
pub fn parse_expr(src: &str) -> Result<Expr, String> {
    let mut toks = lex(src)?;
    toks.reverse(); // pop() takes from the front
    let e = parse_sum(&mut toks)?;
    if let Some(t) = toks.pop() {
        return Err(format!("unexpected `{t}` after expression"));
    }
    Ok(e)
}

fn lex(src: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c.is_ascii_digit() {
            let mut n = String::new();
            while let Some(&d) = chars.peek() {
                if d.is_ascii_digit() || d == '_' {
                    n.push(d);
                    chars.next();
                } else {
                    break;
                }
            }
            out.push(n);
        } else if c.is_ascii_alphabetic() || c == '_' {
            let mut s = String::new();
            while let Some(&d) = chars.peek() {
                if d.is_ascii_alphanumeric() || d == '_' {
                    s.push(d);
                    chars.next();
                } else {
                    break;
                }
            }
            out.push(s);
        } else if matches!(c, '+' | '*' | '(' | ')') {
            out.push(c.to_string());
            chars.next();
        } else {
            return Err(format!("unexpected character `{c}`"));
        }
    }
    Ok(out)
}

fn parse_sum(toks: &mut Vec<String>) -> Result<Expr, String> {
    let mut e = parse_product(toks)?;
    while toks.last().is_some_and(|t| t == "+") {
        toks.pop();
        e = Expr::Add(Box::new(e), Box::new(parse_product(toks)?));
    }
    Ok(e)
}

fn parse_product(toks: &mut Vec<String>) -> Result<Expr, String> {
    let mut e = parse_factor(toks)?;
    while toks.last().is_some_and(|t| t == "*") {
        toks.pop();
        e = Expr::Mul(Box::new(e), Box::new(parse_factor(toks)?));
    }
    Ok(e)
}

fn parse_factor(toks: &mut Vec<String>) -> Result<Expr, String> {
    let Some(t) = toks.pop() else {
        return Err("expression ends where a value was expected".to_string());
    };
    if t == "(" {
        let e = parse_sum(toks)?;
        match toks.pop() {
            Some(c) if c == ")" => Ok(e),
            _ => Err("unclosed `(`".to_string()),
        }
    } else if t.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        t.replace('_', "")
            .parse::<u64>()
            .map(Expr::Num)
            .map_err(|_| format!("bad integer `{t}`"))
    } else if t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        Ok(Expr::Sym(t))
    } else {
        Err(format!("unexpected `{t}` where a value was expected"))
    }
}

/// Marker for a loop whose iterations *partition* the enclosed work
/// rather than repeat it — a spawn loop whose workers claim disjoint
/// items off a shared queue. An annotated loop contributes no nest
/// factor: the work total is carried by the claim loop beneath it, and
/// the dynamic half (the drift evaluator) checks the measured pages
/// against the contract, backstopping the annotation.
pub const SPLIT_MARKER: &str = "COST-SPLIT:";

/// One lexical loop inside a fn body: its token span and the symbolic
/// name of its trip-count bound.
#[derive(Debug, Clone)]
struct LoopSpan {
    /// Token index of the loop body's `{`.
    open: usize,
    /// Token index of the matching `}`.
    close: usize,
    /// 1-based line of the loop keyword.
    line: u32,
    /// Symbolic bound (`npages`, `ones`, `?link`, `*` for bare `loop`).
    bound: String,
}

/// Reconstructs every `for` / `while` / `loop` span in `toks[lo..=hi]`
/// (a fn body, braces included).
fn loop_spans(toks: &[Tok], lo: usize, hi: usize) -> Vec<LoopSpan> {
    let mut out = Vec::new();
    let mut i = lo;
    while i <= hi {
        let t = &toks[i];
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "for" | "while" | "loop") {
            // `&for`/`.for` can't occur; `loop` as a label target can't
            // either — the keywords are unambiguous at token level.
            if let Some(open) = body_brace(toks, i + 1, hi) {
                if let Some(close) = matching_brace(toks, open) {
                    let bound = match t.text.as_str() {
                        "for" => for_bound(toks, i + 1, open),
                        "while" => while_bound(toks, i + 1, open),
                        _ => "*".to_string(),
                    };
                    out.push(LoopSpan {
                        open,
                        close,
                        line: t.line,
                        bound,
                    });
                }
            }
        }
        i += 1;
    }
    out
}

/// The loop body's opening `{`: the first `{` at bracket depth 0 after
/// the keyword. Rust forbids struct literals in loop-header expression
/// position, so this is exact for `for`/`while`; closures in the header
/// (`.position(|x| …)`) are skipped by depth tracking of their own
/// braces only if braced — a `|x| { … }` closure body *would* fool
/// this, which is why header closures are called out as a blind spot.
fn body_brace(toks: &[Tok], from: usize, hi: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = from;
    while i <= hi {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return Some(i),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// The `}` matching the `{` at `open`.
fn matching_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Names the trip count of `for <pat> in <iter> {`: the tokens of
/// `<iter>` are `toks[in_pos+1 .. open]`.
fn for_bound(toks: &[Tok], after_kw: usize, open: usize) -> String {
    let mut in_pos = None;
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().take(open).skip(after_kw) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                _ => {}
            }
        } else if depth == 0 && t.is_ident("in") {
            in_pos = Some(i);
            break;
        }
    }
    let Some(ip) = in_pos else {
        return "?".to_string();
    };
    bound_name(&toks[ip + 1..open])
}

/// Names a `while <cond> {` bound: opaque, so `?<first ident>`.
fn while_bound(toks: &[Tok], after_kw: usize, open: usize) -> String {
    for t in &toks[after_kw..open] {
        if t.kind == TokKind::Ident && !matches!(t.text.as_str(), "let" | "Some" | "None" | "mut") {
            return format!("?{}", t.text);
        }
    }
    "?".to_string()
}

/// Names an iterated expression symbolically.
///
/// * `a..b` / `a..=b` (at depth 0) → the name of `b`;
/// * `xs.chunks(…)` / `chunks_exact` / `windows` → the collection's name;
/// * anything else → the last identifier of the leading `a.b.c` chain
///   (`&ones[1..]` → `ones`, `query.elements` → `elements`,
///   `self.cfg.frames()` → `frames`), or `?`.
fn bound_name(toks: &[Tok]) -> String {
    // Top-level range: name the end expression.
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "." if depth == 0
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
                    // `a..b`, not a float or a method chain.
                    && !toks.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct('.')) =>
                {
                    let rest = &toks[i + 2..];
                    let rest = if rest.first().is_some_and(|t| t.is_punct('=')) {
                        &rest[1..]
                    } else {
                        rest
                    };
                    if rest.is_empty() {
                        return "?".to_string();
                    }
                    return chain_name(rest);
                }
                _ => {}
            }
        }
    }
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "chunks" | "chunks_exact" | "windows")
        {
            return chain_name(&toks[..i.saturating_sub(1)]);
        }
    }
    chain_name(toks)
}

/// The last identifier of the leading `a.b.c` chain (stopping at `(`,
/// `[` or any non-chain punctuation), skipping `&`/`mut`.
fn chain_name(toks: &[Tok]) -> String {
    let mut name = None;
    for t in toks {
        match t.kind {
            TokKind::Ident => {
                if matches!(t.text.as_str(), "mut" | "ref") {
                    continue;
                }
                name = Some(t.text.clone());
            }
            TokKind::Punct => {
                if !matches!(t.text.as_str(), "&" | ".") {
                    break;
                }
            }
            TokKind::Literal => {
                if name.is_none() {
                    name = Some("lit".to_string());
                }
                break;
            }
        }
    }
    name.unwrap_or_else(|| "?".to_string())
}

/// One page-I/O call site inside a fn, with its lexical loop nest.
#[derive(Debug, Clone)]
pub struct IoSite {
    /// Index of the call site in `graph.calls`.
    pub ci: usize,
    /// 1-based line of the call.
    pub line: u32,
    /// The callee name as written.
    pub what: String,
    /// Loops lexically around the call, outermost first (symbolic
    /// bounds).
    pub bounds: Vec<String>,
    /// What the callee adds on top: 0 for primitives and seam wrappers,
    /// the contract degree for contracted callees, the callee's own I/O
    /// depth for followed workspace helpers.
    pub contribution: u32,
    /// `bounds.len() + contribution` — the site's total nest depth.
    pub depth: u32,
    /// The callee whose contribution is counted, for nest rendering
    /// (`None` when the contribution is 0).
    pub via: Option<String>,
}

/// Per-fn I/O analysis over a call graph.
pub struct IoAnalysis {
    /// `io_depth[fid]`: deepest I/O nest, `None` when the fn performs no
    /// page reads (directly or through followed callees).
    pub io_depth: Vec<Option<u32>>,
    /// `sites[fid]`: every I/O call site in the fn's body.
    pub sites: Vec<Vec<IoSite>>,
}

impl IoAnalysis {
    /// The deepest site of `fid`, if any (ties broken by line order —
    /// the first deepest site wins, deterministically).
    pub fn deepest(&self, fid: usize) -> Option<&IoSite> {
        self.sites[fid]
            .iter()
            .max_by(|a, b| a.depth.cmp(&b.depth).then(b.line.cmp(&a.line)))
    }
}

/// The read-side I/O primitive (see the module docs: write-side I/O is
/// out of contract scope by design).
pub const READ_PRIMITIVE: &str = "read_page";

/// Write-protocol seams: read-modify-write primitives whose internal
/// cache-miss read is charged to the *write* protocol (the paper's UC_*
/// update terms), not to the calling scan's read-side contract. Calls
/// INTO these names contribute nothing; their own bodies are still
/// analyzed, so `BufferPool::update_page` carries its own `1 pages`
/// contract for the read it may issue.
pub const WRITE_PROTOCOL: &[&str] = &["update", "update_page"];

/// Computes [`IoAnalysis`] over `graph`. `contract_degree` maps fn ids
/// carrying a `// COST:` contract to the contract's degree; traversal
/// stops at them (their promise is their contribution).
pub fn analyze(graph: &CallGraph<'_>, contract_degree: &HashMap<usize, u32>) -> IoAnalysis {
    let mut an = IoAnalysis {
        io_depth: vec![None; graph.fns.len()],
        sites: vec![Vec::new(); graph.fns.len()],
    };
    let mut memo: Vec<Option<Option<u32>>> = vec![None; graph.fns.len()];
    for fid in 0..graph.fns.len() {
        let mut visiting = HashSet::new();
        depth_of(
            graph,
            contract_degree,
            fid,
            &mut memo,
            &mut visiting,
            &mut an,
        );
    }
    an
}

/// Memoized I/O depth of `fid`; fills `an.sites[fid]` on first visit.
/// Cycles cut at the back edge (contribution `None`).
fn depth_of(
    graph: &CallGraph<'_>,
    contract_degree: &HashMap<usize, u32>,
    fid: usize,
    memo: &mut Vec<Option<Option<u32>>>,
    visiting: &mut HashSet<usize>,
    an: &mut IoAnalysis,
) -> Option<u32> {
    if let Some(d) = memo[fid] {
        return d;
    }
    if !visiting.insert(fid) {
        return None; // recursion: cut, documented blind spot
    }
    let def = &graph.fns[fid];
    let mut sites = Vec::new();
    let mut max_depth: Option<u32> = None;
    if let Some((open, close)) = def.body {
        let file = graph.files[def.file];
        let toks = &file.scanned.toks;
        let spans = loop_spans(toks, open, close);
        // Each SPLIT_MARKER comment attaches to the nearest loop keyword
        // at or below it (within the annotation window) — and only that
        // one, so a marker on a spawn loop never bleeds onto the claim
        // loop nested right under it.
        let mut split = vec![false; spans.len()];
        for (cline, text) in &file.scanned.comments {
            if !text.contains(SPLIT_MARKER) {
                continue;
            }
            let nearest = spans
                .iter()
                .enumerate()
                .filter(|(_, s)| s.line >= *cline && s.line - *cline <= hot_path::ANNOTATION_WINDOW)
                .min_by_key(|(_, s)| s.line)
                .map(|(i, _)| i);
            if let Some(i) = nearest {
                split[i] = true;
            }
        }
        for &ci in &graph.calls_by_fn[fid] {
            let call = &graph.calls[ci];
            if call.is_test {
                continue;
            }
            let Some((contribution, via)) =
                site_contribution(graph, contract_degree, call, memo, visiting, an)
            else {
                continue;
            };
            let bounds: Vec<String> = spans
                .iter()
                .enumerate()
                .filter(|(i, s)| call.tok > s.open && call.tok < s.close && !split[*i])
                .map(|(_, s)| s.bound.clone())
                .collect();
            let depth = bounds.len() as u32 + contribution;
            max_depth = Some(max_depth.map_or(depth, |m| m.max(depth)));
            sites.push(IoSite {
                ci,
                line: call.line,
                what: call.name.clone(),
                bounds,
                contribution,
                depth,
                via,
            });
        }
    }
    an.sites[fid] = sites;
    an.io_depth[fid] = max_depth;
    visiting.remove(&fid);
    memo[fid] = Some(max_depth);
    max_depth
}

/// Whether `call` is a page-I/O site, and what the callee contributes on
/// top of the caller's lexical loops (the precedence ladder from the
/// module docs). `None` = not an I/O site.
fn site_contribution(
    graph: &CallGraph<'_>,
    contract_degree: &HashMap<usize, u32>,
    call: &crate::callgraph::CallSite,
    memo: &mut Vec<Option<Option<u32>>>,
    visiting: &mut HashSet<usize>,
    an: &mut IoAnalysis,
) -> Option<(u32, Option<String>)> {
    // 1. The accounting primitive.
    if call.name == READ_PRIMITIVE {
        return Some((0, None));
    }
    // Write-protocol seams stop traversal before contract matching, so a
    // contract on `update_page` covers its own read without charging it
    // to every insert path.
    if WRITE_PROTOCOL.contains(&call.name.as_str()) {
        return None;
    }
    // A zero-argument method call cannot name a page: `guard.read()` is a
    // lock acquire that merely shares a name with `PagedFile::read`. The
    // name-resolution rules (3 and 5) require at least one argument, and
    // rule 2 honors a contract on a zero-arg ambiguous method call only
    // when the name resolves to a single fn (`file.read_blob()` is real
    // zero-arg I/O and resolves uniquely).
    let toks = &graph.files[call.file].scanned.toks;
    let zero_arg = toks.get(call.tok + 1).is_some_and(|t| t.is_punct('('))
        && toks.get(call.tok + 2).is_some_and(|t| t.is_punct(')'));
    let ambiguous_zero_arg = zero_arg
        && call.targets.len() > 1
        && matches!(&call.kind, CallKind::Method { recv } if recv.as_deref() != Some("self"));
    // 2. A contracted callee: its promise is its contribution.
    let contracted = call
        .targets
        .iter()
        .filter_map(|t| contract_degree.get(t).map(|d| (*t, *d)))
        .max_by_key(|(_, d)| *d);
    if let Some((t, d)) = contracted {
        if !ambiguous_zero_arg {
            let via = (d > 0).then(|| graph.fns[t].name.clone());
            return Some((d, via));
        }
    }
    let caller_crate = &graph.files[call.file].crate_dir;
    let mut best: Option<(u32, usize)> = None;
    let mut consider = |target: usize,
                        memo: &mut Vec<Option<Option<u32>>>,
                        visiting: &mut HashSet<usize>,
                        an: &mut IoAnalysis| {
        if let Some(d) = depth_of(graph, contract_degree, target, memo, visiting, an) {
            if best.is_none_or(|(bd, _)| d > bd) {
                best = Some((d, target));
            }
        }
    };
    for &t in &call.targets {
        let target_crate = &graph.files[graph.fns[t].file].crate_dir;
        match &call.kind {
            // 4. Exact or name+qual-resolved dispatch: follow.
            CallKind::Free | CallKind::Path { .. } => consider(t, memo, visiting, an),
            CallKind::Method { recv } => {
                if recv.as_deref() == Some("self") {
                    consider(t, memo, visiting, an);
                } else if target_crate.as_deref() == Some("pagestore") && !zero_arg {
                    // 3. The storage seam: cross-crate reads into
                    // pagestore are page I/O by construction.
                    consider(t, memo, visiting, an);
                } else if call.targets.len() == 1 && target_crate == caller_crate && !zero_arg {
                    // 5. Unambiguous same-crate field dispatch.
                    consider(t, memo, visiting, an);
                }
                // Ambiguous non-`self` method calls: dropped (see
                // module docs) — a false I/O site is worse than a
                // missed one here; the drift gate backstops.
            }
        }
    }
    best.map(|(d, t)| {
        let via = (d > 0).then(|| graph.fns[t].name.clone());
        (d, via)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::{FileClass, SourceFile};

    #[test]
    fn parse_and_degree() {
        let e = parse_expr("slices * pages_per_slice + oid_pages").unwrap();
        assert_eq!(e.degree(), 2);
        assert_eq!(e.symbols(), ["slices", "pages_per_slice", "oid_pages"]);
        assert_eq!(parse_expr("1").unwrap().degree(), 0);
        assert_eq!(parse_expr("sig_pages").unwrap().degree(), 1);
        // Parenthesized sums distribute into the product degree.
        assert_eq!(parse_expr("probes * (height + chain)").unwrap().degree(), 2);
        assert_eq!(parse_expr("2 * n * m").unwrap().degree(), 2);
        assert_eq!(parse_expr("(a + b) * (c + d * e)").unwrap().degree(), 3);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "", "slices *", "* slices", "(a + b", "a ** b", "a - b", "a / 2",
        ] {
            assert!(parse_expr(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn eval_and_display_round_trip() {
        let e = parse_expr("probes * (height + chain) + 3").unwrap();
        let resolve = |s: &str| match s {
            "probes" => Some(4.0),
            "height" => Some(2.0),
            "chain" => Some(1.0),
            _ => None,
        };
        assert_eq!(e.eval(&resolve).unwrap(), 15.0);
        let printed = e.to_string();
        let again = parse_expr(&printed).unwrap();
        assert_eq!(again, e);
        assert!(e.eval(&|_| None).is_err());
    }

    #[test]
    fn large_literals_with_underscores() {
        assert_eq!(parse_expr("32_000").unwrap(), Expr::Num(32000));
    }

    fn file(src: &str) -> SourceFile {
        SourceFile::new(
            "crates/a/src/lib.rs".to_string(),
            FileClass::Lib,
            Some("a".to_string()),
            src,
        )
    }

    fn analyze_src(src: &str) -> (IoAnalysis, Vec<String>) {
        let f = file(src);
        let graph = CallGraph::build(&[&f]);
        let names: Vec<String> = graph.fns.iter().map(|d| d.name.clone()).collect();
        (analyze(&graph, &HashMap::new()), names)
    }

    fn depth(an: &(IoAnalysis, Vec<String>), name: &str) -> Option<u32> {
        let fid = an.1.iter().position(|n| n == name).unwrap();
        an.0.io_depth[fid]
    }

    #[test]
    fn range_loop_depth_and_bound() {
        let an = analyze_src(
            "fn scan(npages: u32) { for p in 0..npages { read_page(p); } }\n\
             fn one() { read_page(0); }\n\
             fn pure() { let x = 1; }\n",
        );
        assert_eq!(depth(&an, "scan"), Some(1));
        assert_eq!(depth(&an, "one"), Some(0));
        assert_eq!(depth(&an, "pure"), None);
        let fid = an.1.iter().position(|n| n == "scan").unwrap();
        assert_eq!(an.0.sites[fid][0].bounds, ["npages"]);
    }

    #[test]
    fn nested_loops_and_helper_recursion() {
        let an = analyze_src(
            "fn read_slice(n: u32) { for p in 0..n { read_page(p); } }\n\
             fn scan(ones: &[u32]) { for j in ones { self.read_slice(j); } }\n\
             struct S; impl S {\n\
             fn read_slice(&self, n: u32) { for p in 0..n { read_page(p); } }\n\
             fn scan(&self, ones: &[u32]) { for j in ones { self.read_slice(j); } }\n\
             }\n",
        );
        // The method pair: scan's site = 1 loop + read_slice's depth 1.
        let scans: Vec<usize> =
            an.1.iter()
                .enumerate()
                .filter(|(_, n)| *n == "scan")
                .map(|(i, _)| i)
                .collect();
        for fid in scans {
            assert_eq!(an.0.io_depth[fid], Some(2), "fn #{fid}");
        }
    }

    #[test]
    fn while_and_bare_loop_count_one_level() {
        let an = analyze_src(
            "fn chase(mut link: u32) { while link != 0 { read_page(link); link -= 1; } }\n\
             fn spin() { loop { read_page(0); } }\n",
        );
        assert_eq!(depth(&an, "chase"), Some(1));
        assert_eq!(depth(&an, "spin"), Some(1));
        let fid = an.1.iter().position(|n| n == "chase").unwrap();
        assert_eq!(an.0.sites[fid][0].bounds, ["?link"]);
    }

    #[test]
    fn contracted_callee_contributes_its_degree() {
        let f = file(
            "struct S; impl S {\n\
             fn inner(&self) { for p in 0..9 { read_page(p); } }\n\
             fn outer(&self) { for j in 0..3 { self.inner(); } }\n\
             }\n",
        );
        let graph = CallGraph::build(&[&f]);
        let inner = graph.fns.iter().position(|d| d.name == "inner").unwrap();
        let outer = graph.fns.iter().position(|d| d.name == "outer").unwrap();
        let contracts: HashMap<usize, u32> = [(inner, 1)].into();
        let an = analyze(&graph, &contracts);
        // outer: 1 lexical loop + the contract's declared degree.
        assert_eq!(an.io_depth[outer], Some(2));
        assert_eq!(an.sites[outer][0].via.as_deref(), Some("inner"));
    }

    #[test]
    fn ambiguous_method_calls_are_not_io_sites() {
        let an = analyze_src(
            "struct A; impl A { fn get(&self) { read_page(0); } }\n\
             struct B; impl B { fn get(&self) {} }\n\
             fn user(m: &B) { for i in 0..4 { m.get(); } }\n",
        );
        assert_eq!(depth(&an, "user"), None);
    }

    #[test]
    fn chunks_pattern_names_the_collection() {
        let an = analyze_src("fn f(xs: &[u8]) { for c in xs.chunks(16) { read_page(0); } }\n");
        let fid = an.1.iter().position(|n| n == "f").unwrap();
        assert_eq!(an.0.sites[fid][0].bounds, ["xs"]);
    }

    #[test]
    fn len_pattern_names_the_collection() {
        let an = analyze_src("fn f(xs: &[u8]) { for i in 0..xs.len() { read_page(0); } }\n");
        let fid = an.1.iter().position(|n| n == "f").unwrap();
        // `0..xs.len()` — the range end's chain resolves to `len`'s
        // receiver chain tail; the collection is the stable name.
        assert_eq!(an.0.sites[fid][0].bounds, ["len"]);
    }

    #[test]
    fn recursion_is_cut_not_divergent() {
        let an = analyze_src("fn f(n: u32) { read_page(n); if n > 0 { f(n - 1); } }\n");
        assert_eq!(depth(&an, "f"), Some(0));
    }

    #[test]
    fn cost_split_loop_adds_no_nesting_level() {
        let src = "fn f(w: usize, xs: &[u32]) {\n\
                   \x20   // COST-SPLIT: xs\n\
                   \x20   for _ in 0..w {\n\
                   \x20       loop { read_page(0); }\n\
                   \x20   }\n\
                   }\n";
        let an = analyze_src(src);
        let fid = an.1.iter().position(|n| n == "f").unwrap();
        // The spawn loop is dropped; only the claim loop counts.
        assert_eq!(an.0.sites[fid][0].bounds, ["*"]);
        assert_eq!(depth(&an, "f"), Some(1));
    }

    #[test]
    fn cost_split_outside_window_still_multiplies() {
        let src = "fn f(w: usize) {\n\
                   \x20   // COST-SPLIT: xs\n\
                   \x20   //\n\
                   \x20   //\n\
                   \x20   //\n\
                   \x20   for _ in 0..w {\n\
                   \x20       loop { read_page(0); }\n\
                   \x20   }\n\
                   }\n";
        let an = analyze_src(src);
        assert_eq!(depth(&an, "f"), Some(2));
    }
}
