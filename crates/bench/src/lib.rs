//! Shared fixtures for the Criterion benchmark suite.
//!
//! Each `benches/figN.rs` / `benches/tableN.rs` target times the workload
//! behind the corresponding paper exhibit — the `repro` binary reports the
//! page-access counts (the paper's metric); these benches report the
//! wall-clock the real implementations take to do that work, plus
//! ablations of the design choices DESIGN.md calls out.

#![forbid(unsafe_code)]

use setsig_core::{ElementKey, SetQuery};
use setsig_experiments::SimDb;
use setsig_workload::{Cardinality, Distribution, WorkloadConfig};

/// A reduced-scale paper instance for benchmarking: `N = 32,000/scale`,
/// `V = 13,000/scale`, fixed `D_t`.
pub fn bench_workload(d_t: u32, scale: u64) -> WorkloadConfig {
    WorkloadConfig {
        n_objects: 32_000 / scale,
        domain: (13_000 / scale).max(2 * d_t as u64),
        cardinality: Cardinality::Fixed(d_t),
        distribution: Distribution::Uniform,
        seed: 0x000b_e0c4 + d_t as u64,
    }
}

/// Builds the standard bench instance (scale 1/8 ⇒ 4,000 objects).
pub fn bench_db(d_t: u32) -> SimDb {
    SimDb::build(bench_workload(d_t, 8))
}

/// A deterministic random ⊇ query of cardinality `d_q`.
pub fn superset_query(sim: &SimDb, d_q: u32, seed: u64) -> SetQuery {
    let mut qg = sim.query_gen(seed);
    SetQuery::has_subset(qg.random(d_q).into_iter().map(ElementKey::from).collect())
}

/// A deterministic random ⊆ query of cardinality `d_q`.
pub fn subset_query(sim: &SimDb, d_q: u32, seed: u64) -> SetQuery {
    let mut qg = sim.query_gen(seed);
    SetQuery::in_subset(qg.random(d_q).into_iter().map(ElementKey::from).collect())
}
