//! Figure 9 workload: smart `T ⊆ Q` retrieval at D_t = 10 — the slice-cap
//! strategy vs the plain scan vs NIX.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setsig_bench::{bench_db, subset_query};
use setsig_costmodel::{BssfModel, Params};

fn fig9(c: &mut Criterion) {
    let sim = bench_db(10);
    let bssf = sim.build_bssf(500, 2);
    let nix = sim.build_nix();
    let p = Params::scaled(sim.cfg.n_objects, sim.cfg.domain);
    let model = BssfModel::new(p, 500, 2, 10);
    let opt = model.d_q_opt().round().max(1.0) as u32;
    let slice_cap = (500.0 - model.m_s(opt)).round().max(1.0) as usize;

    let mut group = c.benchmark_group("fig9_smart_subset_dt10");
    group.sample_size(10);
    for d_q in [30u32, 100, 300] {
        let q = subset_query(&sim, d_q, 90 + d_q as u64);
        group.bench_with_input(BenchmarkId::new("bssf_plain", d_q), &q, |b, q| {
            b.iter(|| sim.measure_facility(&bssf, q))
        });
        group.bench_with_input(BenchmarkId::new("bssf_smart", d_q), &q, |b, q| {
            b.iter(|| sim.measure_smart(&bssf, q, || bssf.candidates_subset_smart(q, slice_cap)))
        });
        group.bench_with_input(BenchmarkId::new("nix", d_q), &q, |b, q| {
            b.iter(|| sim.measure_facility(&nix, q))
        });
    }
    group.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);
