//! Figure 10 workload: smart `T ⊆ Q` retrieval at D_t = 100 (BSSF m = 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setsig_bench::{bench_db, subset_query};
use setsig_costmodel::{BssfModel, Params};

fn fig10(c: &mut Criterion) {
    let sim = bench_db(100);
    let bssf = sim.build_bssf(2500, 3);
    let nix = sim.build_nix();
    let p = Params::scaled(sim.cfg.n_objects, sim.cfg.domain);
    let model = BssfModel::new(p, 2500, 3, 100);
    let opt = model.d_q_opt().round().max(1.0) as u32;
    let slice_cap = (2500.0 - model.m_s(opt)).round().max(1.0) as usize;

    let mut group = c.benchmark_group("fig10_smart_subset_dt100");
    group.sample_size(10);
    for d_q in [150u32, 400] {
        let q = subset_query(&sim, d_q, 100 + d_q as u64);
        group.bench_with_input(BenchmarkId::new("bssf_smart", d_q), &q, |b, q| {
            b.iter(|| sim.measure_smart(&bssf, q, || bssf.candidates_subset_smart(q, slice_cap)))
        });
        group.bench_with_input(BenchmarkId::new("nix", d_q), &q, |b, q| {
            b.iter(|| sim.measure_facility(&nix, q))
        });
    }
    group.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);
