//! Table 7 workload: single-object insert and delete costs on each
//! facility.

use criterion::{criterion_group, criterion_main, Criterion};
use setsig_bench::bench_db;
use setsig_core::{ElementKey, Oid, SetAccessFacility};

fn table7(c: &mut Criterion) {
    let sim = bench_db(10);
    let mut group = c.benchmark_group("table7_updates");
    group.sample_size(10);
    let set: Vec<ElementKey> = sim.sets[0].iter().map(|&e| ElementKey::from(e)).collect();
    let n = sim.sets.len() as u64;

    let mut ssf = sim.build_ssf(250, 2);
    let mut fresh = n;
    group.bench_function("ssf_insert_delete", |b| {
        b.iter(|| {
            fresh += 1;
            ssf.insert(Oid::new(fresh), &set).unwrap();
            ssf.delete(Oid::new(fresh), &set).unwrap();
        })
    });

    let mut bssf = sim.build_bssf(250, 2);
    let mut fresh = n;
    group.bench_function("bssf_insert_delete", |b| {
        b.iter(|| {
            fresh += 1;
            bssf.insert(Oid::new(fresh), &set).unwrap();
            bssf.delete(Oid::new(fresh), &set).unwrap();
        })
    });

    let mut nix = sim.build_nix();
    let mut fresh = n;
    group.bench_function("nix_insert_delete", |b| {
        b.iter(|| {
            fresh += 1;
            nix.insert(Oid::new(fresh), &set).unwrap();
            nix.delete(Oid::new(fresh), &set).unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, table7);
criterion_main!(benches);
