//! Figure 5 workload: `T ⊇ Q` on BSSF with small weights m = 1..4 vs NIX.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setsig_bench::{bench_db, superset_query};

fn fig5(c: &mut Criterion) {
    let sim = bench_db(10);
    let bssfs: Vec<_> = (1..=4u32).map(|m| (m, sim.build_bssf(500, m))).collect();
    let nix = sim.build_nix();

    let mut group = c.benchmark_group("fig5_superset_small_m");
    group.sample_size(20);
    let q = superset_query(&sim, 3, 50);
    for (m, bssf) in &bssfs {
        group.bench_with_input(BenchmarkId::new("bssf_m", m), &q, |b, q| {
            b.iter(|| sim.measure_facility(bssf, q))
        });
    }
    group.bench_with_input(BenchmarkId::new("nix", 0), &q, |b, q| {
        b.iter(|| sim.measure_facility(&nix, q))
    });
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
