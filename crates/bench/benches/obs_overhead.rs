//! Observability overhead: the same BSSF query stream with the recorder
//! detached (the default — the `obs: None` fast path must cost nothing
//! beyond the per-query counter allocation) and attached (ring sink).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setsig_bench::{bench_db, bench_workload, subset_query, superset_query};
use setsig_core::SetAccessFacility;
use setsig_experiments::SimDb;

fn obs_overhead(c: &mut Criterion) {
    let plain = bench_db(10);
    let mut traced = SimDb::build(bench_workload(10, 8));
    traced.enable_observability(4096);

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(30);
    for (label, sim) in [("detached", &plain), ("attached", &traced)] {
        let bssf = sim.build_bssf(500, 2);
        let q_sup = superset_query(sim, 3, 50);
        let q_sub = subset_query(sim, 50, 51);
        group.bench_with_input(BenchmarkId::new("superset", label), &q_sup, |b, q| {
            b.iter(|| bssf.candidates_with_stats(q).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("subset", label), &q_sub, |b, q| {
            b.iter(|| bssf.candidates_with_stats(q).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, obs_overhead);
criterion_main!(benches);
