//! Table 6 workload: building all three facilities (whose storage the
//! table compares) over the same instance.

use criterion::{criterion_group, criterion_main, Criterion};
use setsig_bench::bench_db;
use setsig_core::SetAccessFacility;

fn table6(c: &mut Criterion) {
    let sim = bench_db(10);
    let mut group = c.benchmark_group("table6_build_and_storage");
    group.sample_size(10);
    group.bench_function("build_ssf_f250", |b| {
        b.iter(|| sim.build_ssf(250, 2).storage_pages().unwrap())
    });
    group.bench_function("build_bssf_f250_bulk", |b| {
        b.iter(|| sim.build_bssf(250, 2).storage_pages().unwrap())
    });
    group.bench_function("build_nix", |b| {
        b.iter(|| sim.build_nix().storage_pages().unwrap())
    });
    group.finish();
}

criterion_group!(benches, table6);
criterion_main!(benches);
