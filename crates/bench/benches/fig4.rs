//! Figure 4 workload: `T ⊇ Q` retrieval at the text-retrieval weight
//! `m = m_opt` — SSF full scan vs BSSF slice reads vs NIX look-ups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setsig_bench::{bench_db, superset_query};

fn fig4(c: &mut Criterion) {
    let sim = bench_db(10);
    let ssf = sim.build_ssf(500, 35);
    let bssf = sim.build_bssf(500, 35);
    let nix = sim.build_nix();

    let mut group = c.benchmark_group("fig4_superset_mopt");
    group.sample_size(20);
    for d_q in [1u32, 3, 10] {
        let q = superset_query(&sim, d_q, 40 + d_q as u64);
        group.bench_with_input(BenchmarkId::new("ssf", d_q), &q, |b, q| {
            b.iter(|| sim.measure_facility(&ssf, q))
        });
        group.bench_with_input(BenchmarkId::new("bssf", d_q), &q, |b, q| {
            b.iter(|| sim.measure_facility(&bssf, q))
        });
        group.bench_with_input(BenchmarkId::new("nix", d_q), &q, |b, q| {
            b.iter(|| sim.measure_facility(&nix, q))
        });
    }
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
