//! Word-kernel before/after: the slice-combining hot loops as they were
//! before the shared kernel module (per-word `le_word` byte bridge with a
//! bounds branch per word, plus a separate `is_zero` liveness pass per
//! slice) against `setsig_core::kernel` (chunked `u64` loops with fused
//! liveness). Both sides produce byte-identical accumulators — asserted
//! here before timing — so the groups measure pure kernel throughput.
//!
//! The baselines below are verbatim copies of the pre-kernel `bitmap.rs`
//! code, kept in this bench (not the library) so the library carries
//! exactly one implementation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use setsig_core::kernel;

/// The `parallel_scan` instance's slice width: ~99k rows spanning 3 full
/// slice pages plus a partial fourth, so the 12,413-byte slices are NOT a
/// multiple of 8 — the alignment case the byte bridge's per-word bounds
/// branch pays for (at 8-aligned widths LLVM vectorizes both sides and
/// the gap closes; real instances are almost never 8-aligned).
const NBITS: u32 = 3 * 32_768 + 1_000;
/// Slices ANDed per ⊇ scan — a D_q = 3 query at the fig-4 design point
/// reads ~100 slices; 48 keeps the AND alive to the end at 97% density.
const NSLICES: usize = 48;

/// Deterministic ~97%-density slice bytes (dense 1-slices are the ⊇
/// scan's common case: most rows set any given popular bit).
fn slices() -> Vec<Vec<u8>> {
    let nbytes = (NBITS as usize).div_ceil(8);
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    (0..NSLICES)
        .map(|_| {
            (0..nbytes)
                .map(|_| {
                    state = state
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(1_442_695_040_888_963_407);
                    // OR of three taps ≈ 1 - (1/2)^3 ≈ 88% per bit; OR in a
                    // fourth for ~97%.
                    let b = (state >> 16) as u8 | (state >> 32) as u8 | (state >> 48) as u8;
                    b | (state >> 8) as u8 & 0x55
                })
                .collect()
        })
        .collect()
}

// --- pre-kernel byte bridge, verbatim -------------------------------------

/// Word `wi` of an LSB-first byte buffer, zero-padded past the end: the
/// old per-word bridge, bounds branch and all.
#[inline]
fn le_word_pre(bytes: &[u8], wi: usize) -> u64 {
    let start = wi * 8;
    if start + 8 <= bytes.len() {
        u64::from_le_bytes(bytes[start..start + 8].try_into().expect("8 bytes"))
    } else if start < bytes.len() {
        let mut buf = [0u8; 8];
        buf[..bytes.len() - start].copy_from_slice(&bytes[start..]);
        u64::from_le_bytes(buf)
    } else {
        0
    }
}

/// The pre-kernel ⊇ AND loop: `from_bytes`-style fill of the first slice,
/// then per-slice `and_assign_bytes` with a *separate* full-accumulator
/// `is_zero` pass for the early-exit check.
fn and_scan_pre(slices: &[Vec<u8>]) -> Vec<u64> {
    let nwords = (NBITS as usize).div_ceil(64);
    let nbytes = (NBITS as usize).div_ceil(8);
    let mut words = vec![0u64; nwords];
    for (wi, w) in words.iter_mut().enumerate() {
        *w = le_word_pre(&slices[0][..nbytes], wi);
    }
    let rem = NBITS % 64;
    if rem != 0 {
        words[nwords - 1] &= (1u64 << rem) - 1;
    }
    for bytes in &slices[1..] {
        if words.iter().all(|&w| w == 0) {
            break;
        }
        for (wi, w) in words.iter_mut().enumerate() {
            *w &= le_word_pre(&bytes[..nbytes], wi);
        }
    }
    words
}

/// The pre-kernel ⊆ OR loop: per-word `le_word` plus a tail re-mask on
/// every slice (the old `or_assign_bytes` called `mask_tail` each time).
fn or_scan_pre(slices: &[Vec<u8>]) -> Vec<u64> {
    let nwords = (NBITS as usize).div_ceil(64);
    let nbytes = (NBITS as usize).div_ceil(8);
    let mut words = vec![0u64; nwords];
    for bytes in slices {
        for (wi, w) in words.iter_mut().enumerate() {
            *w |= le_word_pre(&bytes[..nbytes], wi);
        }
        let rem = NBITS % 64;
        if rem != 0 {
            words[nwords - 1] &= (1u64 << rem) - 1;
        }
    }
    words
}

/// The pre-kernel overlap counter: the old `iter_ones_bytes` flat-map
/// iterator (per-bit range check inside the word loop) feeding
/// `counts[p] += 1`.
fn overlap_count_pre(slices: &[Vec<u8>]) -> Vec<u32> {
    let mut counts = vec![0u32; NBITS as usize];
    let nbytes = (NBITS as usize).div_ceil(8);
    let nwords = (NBITS as usize).div_ceil(64);
    for bytes in slices {
        let bytes = &bytes[..nbytes.min(bytes.len())];
        for wi in 0..nwords {
            let mut w = le_word_pre(bytes, wi);
            while w != 0 {
                let bit = w.trailing_zeros();
                w &= w - 1;
                let pos = wi as u32 * 64 + bit;
                if pos < NBITS {
                    counts[pos as usize] += 1;
                }
            }
        }
    }
    counts
}

// --- word-kernel counterparts ----------------------------------------------

/// The kernel ⊇ AND loop: `kernel::fill` once, then fused AND+liveness —
/// one pass per slice instead of two.
fn and_scan_kernel(slices: &[Vec<u8>]) -> Vec<u64> {
    let mut words = vec![0u64; kernel::words_for(NBITS)];
    kernel::fill(&mut words, &slices[0], NBITS);
    for bytes in &slices[1..] {
        if kernel::and_assign(&mut words, bytes) == 0 {
            break;
        }
    }
    words
}

fn or_scan_kernel(slices: &[Vec<u8>]) -> Vec<u64> {
    let mut words = vec![0u64; kernel::words_for(NBITS)];
    for bytes in slices {
        kernel::or_assign(&mut words, bytes, NBITS);
    }
    words
}

fn overlap_count_kernel(slices: &[Vec<u8>]) -> Vec<u32> {
    let mut counts = vec![0u32; NBITS as usize];
    for bytes in slices {
        kernel::accumulate_ones(&mut counts, bytes);
    }
    counts
}

fn kernels(c: &mut Criterion) {
    let data = slices();

    // The before/after must agree bit-for-bit before any timing counts:
    // a fast kernel that drops candidates is not an optimization.
    assert_eq!(and_scan_pre(&data), and_scan_kernel(&data));
    assert_eq!(or_scan_pre(&data), or_scan_kernel(&data));
    assert_eq!(overlap_count_pre(&data), overlap_count_kernel(&data));
    let ones_now: Vec<u32> = kernel::iter_ones(NBITS, &data[0]).collect();
    assert_eq!(ones_now, kernel::reference::iter_ones(NBITS, &data[0]));

    // Headline: the BSSF ⊇ AND-scan, byte bridge vs. fused word kernel.
    let mut group = c.benchmark_group("kernel_and_scan");
    group.sample_size(30);
    group.bench_function("byte_bridge_pre", |b| {
        b.iter(|| black_box(and_scan_pre(black_box(&data))))
    });
    group.bench_function("word_kernel", |b| {
        b.iter(|| black_box(and_scan_kernel(black_box(&data))))
    });
    group.finish();

    let mut group = c.benchmark_group("kernel_or_scan");
    group.sample_size(30);
    group.bench_function("byte_bridge_pre", |b| {
        b.iter(|| black_box(or_scan_pre(black_box(&data))))
    });
    group.bench_function("word_kernel", |b| {
        b.iter(|| black_box(or_scan_kernel(black_box(&data))))
    });
    group.finish();

    let mut group = c.benchmark_group("kernel_overlap_count");
    group.sample_size(10);
    group.bench_function("iter_ones_bytes_pre", |b| {
        b.iter(|| black_box(overlap_count_pre(black_box(&data))))
    });
    group.bench_function("accumulate_ones", |b| {
        b.iter(|| black_box(overlap_count_kernel(black_box(&data))))
    });
    group.finish();
}

criterion_group!(benches, kernels);
criterion_main!(benches);
