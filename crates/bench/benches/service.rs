//! The sharded query service versus the flat facility: pooled query
//! fan-out at shard counts 1/2/4/8 over identical instances, and the
//! live-update mix (inserts racing queries across shard locks).
//!
//! The 1-shard service answers through the same admission queue and
//! worker pool as the sharded ones, so `pooled/1` vs `flat/1` isolates
//! the pool overhead and `pooled/N` the sharding win. With
//! `BENCH_JSON=BENCH_service.json` the harness writes the summary CI
//! uploads for the perf trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setsig_core::{Bssf, ElementKey, Oid, SetAccessFacility, SetQuery, SignatureConfig};
use setsig_pagestore::{Disk, PageIo};
use setsig_service::{shard_of, QueryService, ServiceConfig};
use setsig_workload::{Cardinality, Distribution, QueryGen, SetGenerator, WorkloadConfig};
use std::sync::Arc;

const N: u64 = 32_768 + 1_000;
const DOMAIN: u64 = 8_000;
const D_T: u32 = 10;
const F: u32 = 500;
const M: u32 = 2;

fn sets() -> Vec<(Oid, Vec<ElementKey>)> {
    let cfg = WorkloadConfig {
        n_objects: N,
        domain: DOMAIN,
        cardinality: Cardinality::Fixed(D_T),
        distribution: Distribution::Uniform,
        seed: 0x5e41_11ce,
    };
    SetGenerator::new(cfg)
        .generate_all()
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            (
                Oid::new(i as u64),
                s.iter().map(|&e| ElementKey::from(e)).collect(),
            )
        })
        .collect()
}

fn build_service(items: &[(Oid, Vec<ElementKey>)], shards: usize) -> QueryService<Bssf> {
    let disk = Arc::new(Disk::new());
    let mut partitions: Vec<Vec<(Oid, Vec<ElementKey>)>> = vec![Vec::new(); shards];
    for (oid, set) in items {
        partitions[shard_of(*oid, shards)].push((*oid, set.clone()));
    }
    let facilities: Vec<Bssf> = partitions
        .iter()
        .enumerate()
        .map(|(i, part)| {
            let mut b = Bssf::create(
                Arc::clone(&disk) as Arc<dyn PageIo>,
                &format!("svc{i}"),
                SignatureConfig::new(F, M).unwrap(),
            )
            .unwrap();
            b.bulk_load(part).unwrap();
            b
        })
        .collect();
    QueryService::new(facilities, ServiceConfig::new(shards)).unwrap()
}

fn build_flat(items: &[(Oid, Vec<ElementKey>)]) -> Bssf {
    let disk = Arc::new(Disk::new());
    let mut b = Bssf::create(
        Arc::clone(&disk) as Arc<dyn PageIo>,
        "flat",
        SignatureConfig::new(F, M).unwrap(),
    )
    .unwrap();
    b.bulk_load(items).unwrap();
    b
}

fn queries(count: usize) -> Vec<SetQuery> {
    let mut qg = QueryGen::new(DOMAIN, 0xbe_5e41);
    (0..count)
        .map(|_| SetQuery::has_subset(qg.random(3).into_iter().map(ElementKey::from).collect()))
        .collect()
}

fn bench_service(c: &mut Criterion) {
    let items = sets();
    let qs = queries(16);
    let mut group = c.benchmark_group("service");
    group.sample_size(10);

    let flat = build_flat(&items);
    group.bench_function("flat/1", |b| {
        b.iter(|| {
            for q in &qs {
                criterion::black_box(flat.candidates_with_stats(q).unwrap());
            }
        })
    });

    for shards in [1usize, 2, 4, 8] {
        let svc = build_service(&items, shards);
        group.bench_with_input(BenchmarkId::new("pooled", shards), &svc, |b, svc| {
            b.iter(|| {
                criterion::black_box(svc.query_batch(&qs).unwrap());
            })
        });
    }

    // Live-update mix: queries riding the pool while inserts take shard
    // write locks — the concurrency story the serial paper protocol
    // cannot express.
    let svc = build_service(&items, 4);
    let fresh: Vec<(Oid, Vec<ElementKey>)> = (0..64u64)
        .map(|i| {
            (
                Oid::new(N + i),
                (0..D_T as u64)
                    .map(|j| ElementKey::from(j * 17 + i))
                    .collect(),
            )
        })
        .collect();
    group.bench_function("mixed/4", |b| {
        b.iter(|| {
            let tickets: Vec<_> = qs.iter().map(|q| svc.submit(q)).collect();
            for (oid, set) in &fresh {
                svc.insert(*oid, set).unwrap();
                svc.delete(*oid, set).unwrap();
            }
            for t in tickets {
                criterion::black_box(t.wait().unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
