//! Ablations of the design choices DESIGN.md calls out:
//!
//! * BSSF insert paths: paper worst-case (F+1) vs sparse (~m_t+1) vs bulk,
//! * buffer pool on/off under an SSF scan and a NIX look-up storm,
//! * signature width F sweep for the ⊇ filter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setsig_bench::{bench_db, superset_query};
use setsig_core::{
    Bssf, ElementKey, Fssf, FssfConfig, Oid, SetAccessFacility, Signature, SignatureConfig,
};
use setsig_pagestore::{BufferPool, Disk, PageIo};
use std::sync::Arc;

fn insert_paths(c: &mut Criterion) {
    let sim = bench_db(10);
    let set: Vec<ElementKey> = sim.sets[0].iter().map(|&e| ElementKey::from(e)).collect();
    let mut group = c.benchmark_group("ablation_bssf_insert_paths");
    group.sample_size(10);

    let mut dense = sim.build_bssf(500, 2);
    let mut next = sim.sets.len() as u64;
    group.bench_function("dense_f_plus_1", |b| {
        b.iter(|| {
            next += 1;
            dense.insert(Oid::new(next), &set).unwrap();
        })
    });

    let disk = Arc::new(Disk::new());
    let io = Arc::clone(&disk) as Arc<dyn PageIo>;
    let mut sparse = Bssf::create(io, "sparse", SignatureConfig::new(500, 2).unwrap()).unwrap();
    let sig = Signature::for_set(sparse.config(), &set);
    let mut next = 0u64;
    group.bench_function("sparse_m_plus_1", |b| {
        b.iter(|| {
            next += 1;
            sparse
                .insert_signature_sparse(Oid::new(next), &sig)
                .unwrap();
        })
    });

    let disk = Arc::new(Disk::new());
    let io = Arc::clone(&disk) as Arc<dyn PageIo>;
    let mut fssf = Fssf::create(io, "fr", FssfConfig::new(500, 50, 3).unwrap()).unwrap();
    let mut next = 0u64;
    group.bench_function("fssf_frames_per_insert", |b| {
        b.iter(|| {
            next += 1;
            fssf.insert(Oid::new(next), &set).unwrap();
        })
    });

    let items: Vec<(Oid, Vec<ElementKey>)> = sim
        .sets
        .iter()
        .enumerate()
        .map(|(i, s)| {
            (
                Oid::new(i as u64),
                s.iter().map(|&e| ElementKey::from(e)).collect(),
            )
        })
        .collect();
    group.bench_function("batch_insert_64", |b| {
        let disk = Arc::new(Disk::new());
        let io = Arc::clone(&disk) as Arc<dyn PageIo>;
        let mut bssf = Bssf::create(io, "batch", SignatureConfig::new(500, 2).unwrap()).unwrap();
        let mut offset = 0usize;
        b.iter(|| {
            let chunk: Vec<(Oid, Vec<ElementKey>)> = items
                .iter()
                .take(64)
                .map(|(_, set)| {
                    offset += 1;
                    (Oid::new(offset as u64 + 1_000_000), set.clone())
                })
                .collect();
            bssf.insert_batch(&chunk).unwrap();
        })
    });

    group.bench_function("bulk_load_whole_db", |b| {
        b.iter(|| {
            let disk = Arc::new(Disk::new());
            let io = Arc::clone(&disk) as Arc<dyn PageIo>;
            let mut bssf = Bssf::create(io, "bulk", SignatureConfig::new(500, 2).unwrap()).unwrap();
            bssf.bulk_load(&items).unwrap();
        })
    });
    group.finish();
}

fn buffer_pool(c: &mut Criterion) {
    // Repeated NIX root/non-leaf reads are exactly what a page cache
    // absorbs; the paper's model assumes no cache.
    let sim = bench_db(10);
    let nix = sim.build_nix();
    let q = superset_query(&sim, 3, 7);
    let mut group = c.benchmark_group("ablation_buffer_pool");
    group.sample_size(10);
    group.bench_function("nix_uncached", |b| b.iter(|| nix.candidates(&q).unwrap()));
    // A cached variant: same tree pages behind a 64-frame pool.
    let pooled_disk = Arc::new(Disk::new());
    let pool: Arc<dyn PageIo> = Arc::new(BufferPool::new(Arc::clone(&pooled_disk), 64));
    let mut nix_cached = setsig_nix::Nix::on_io(pool, "cached");
    for (i, set) in sim.sets.iter().enumerate() {
        let keys: Vec<ElementKey> = set.iter().map(|&e| ElementKey::from(e)).collect();
        nix_cached.insert(Oid::new(i as u64), &keys).unwrap();
    }
    group.bench_function("nix_cached_64_frames", |b| {
        b.iter(|| nix_cached.candidates(&q).unwrap())
    });
    group.finish();
}

fn f_sweep(c: &mut Criterion) {
    let sim = bench_db(10);
    let mut group = c.benchmark_group("ablation_f_sweep_superset");
    group.sample_size(10);
    for f in [125u32, 250, 500, 1000] {
        let bssf = sim.build_bssf(f, 2);
        let q = superset_query(&sim, 3, 11);
        group.bench_with_input(BenchmarkId::new("bssf", f), &q, |b, q| {
            b.iter(|| sim.measure_facility(&bssf, q))
        });
    }
    group.finish();
}

criterion_group!(benches, insert_paths, buffer_pool, f_sweep);
criterion_main!(benches);
