//! System benchmark: a mixed operation trace (inserts, deletes, both query
//! types) replayed against each facility — the deployment view the paper's
//! per-cost tables imply but never run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setsig_core::{
    Bssf, ElementKey, Fssf, FssfConfig, Oid, SetAccessFacility, SetQuery, SignatureConfig, Ssf,
};
use setsig_nix::Nix;
use setsig_pagestore::{Disk, PageIo};
use setsig_workload::{generate_trace, TraceConfig, TraceOp};
use std::sync::Arc;

fn replay(facility: &mut dyn SetAccessFacility, trace: &[TraceOp]) -> u64 {
    let mut live: Vec<(Oid, Vec<ElementKey>)> = Vec::new();
    let mut next = 0u64;
    let mut answered = 0u64;
    for op in trace {
        match op {
            TraceOp::Insert { set } => {
                let keys: Vec<ElementKey> = set.iter().map(|&e| ElementKey::from(e)).collect();
                let oid = Oid::new(next);
                next += 1;
                facility.insert(oid, &keys).unwrap();
                live.push((oid, keys));
            }
            TraceOp::Delete { victim } => {
                if !live.is_empty() {
                    let i = (*victim as usize) % live.len();
                    let (oid, keys) = live.swap_remove(i);
                    facility.delete(oid, &keys).unwrap();
                }
            }
            TraceOp::SupersetQuery { query } => {
                let q = SetQuery::has_subset(query.iter().map(|&e| ElementKey::from(e)).collect());
                answered += facility.candidates(&q).unwrap().len() as u64;
            }
            TraceOp::SubsetQuery { query } => {
                let q = SetQuery::in_subset(query.iter().map(|&e| ElementKey::from(e)).collect());
                answered += facility.candidates(&q).unwrap().len() as u64;
            }
        }
    }
    answered
}

fn mixed(c: &mut Criterion) {
    let mut group = c.benchmark_group("mixed_trace");
    group.sample_size(10);
    for (mix_name, cfg) in [
        ("query_heavy", TraceConfig::query_heavy(400)),
        ("insert_heavy", TraceConfig::insert_heavy(400)),
    ] {
        let trace = generate_trace(&cfg);
        group.bench_with_input(BenchmarkId::new("ssf", mix_name), &trace, |b, trace| {
            b.iter(|| {
                let disk = Arc::new(Disk::new());
                let io = Arc::clone(&disk) as Arc<dyn PageIo>;
                let mut f = Ssf::create(io, "s", SignatureConfig::new(250, 2).unwrap()).unwrap();
                replay(&mut f, trace)
            })
        });
        group.bench_with_input(BenchmarkId::new("bssf", mix_name), &trace, |b, trace| {
            b.iter(|| {
                let disk = Arc::new(Disk::new());
                let io = Arc::clone(&disk) as Arc<dyn PageIo>;
                let mut f = Bssf::create(io, "b", SignatureConfig::new(250, 2).unwrap()).unwrap();
                replay(&mut f, trace)
            })
        });
        group.bench_with_input(BenchmarkId::new("fssf", mix_name), &trace, |b, trace| {
            b.iter(|| {
                let disk = Arc::new(Disk::new());
                let io = Arc::clone(&disk) as Arc<dyn PageIo>;
                let mut f = Fssf::create(io, "f", FssfConfig::new(250, 25, 3).unwrap()).unwrap();
                replay(&mut f, trace)
            })
        });
        group.bench_with_input(BenchmarkId::new("nix", mix_name), &trace, |b, trace| {
            b.iter(|| {
                let disk = Arc::new(Disk::new());
                let mut f = Nix::create(disk, "n");
                replay(&mut f, trace)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, mixed);
criterion_main!(benches);
