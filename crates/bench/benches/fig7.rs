//! Figure 7 workload: smart `T ⊇ Q` retrieval at D_t = 100 (BSSF m = 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setsig_bench::{bench_db, superset_query};

fn fig7(c: &mut Criterion) {
    let sim = bench_db(100);
    let bssf = sim.build_bssf(2500, 3);
    let nix = sim.build_nix();

    let mut group = c.benchmark_group("fig7_smart_superset_dt100");
    group.sample_size(10);
    for d_q in [2u32, 10, 50] {
        let q = superset_query(&sim, d_q, 70 + d_q as u64);
        group.bench_with_input(BenchmarkId::new("bssf_smart", d_q), &q, |b, q| {
            b.iter(|| sim.measure_smart(&bssf, q, || bssf.candidates_superset_smart(q, 3)))
        });
        group.bench_with_input(BenchmarkId::new("nix_smart", d_q), &q, |b, q| {
            b.iter(|| sim.measure_smart(&nix, q, || nix.candidates_superset_smart(q, 2)))
        });
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
