//! Serial vs. parallel slice-scan engine, at a size where parallelism can
//! pay: ~99k rows so every slice spans 4 pages and a ⊇ query at `m_opt`
//! ANDs dozens of slices (⊆ queries OR hundreds).
//!
//! Thread counts 1/2/4/8 over identical instances; the filtering answers
//! are identical by construction (see `tests/parallel_parity.rs`), so this
//! measures pure engine wall-clock. Run on a ≥4-core machine for
//! meaningful scaling; results on this repo's reference hardware are
//! recorded in `results/parallel_speedup.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setsig_core::{Bssf, ElementKey, Oid, SetAccessFacility, SetQuery, SignatureConfig, Ssf};
use setsig_pagestore::{Disk, PageIo};
use setsig_workload::{Cardinality, Distribution, QueryGen, SetGenerator, WorkloadConfig};
use std::sync::Arc;

/// 3 full slice pages plus a partial fourth.
const N: u64 = 3 * 32_768 + 1_000;
const DOMAIN: u64 = 13_000;
const D_T: u32 = 10;

fn sets() -> Vec<(Oid, Vec<ElementKey>)> {
    let cfg = WorkloadConfig {
        n_objects: N,
        domain: DOMAIN,
        cardinality: Cardinality::Fixed(D_T),
        distribution: Distribution::Uniform,
        seed: 0x000b_e0c4 + 99,
    };
    SetGenerator::new(cfg)
        .generate_all()
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            (
                Oid::new(i as u64),
                s.iter().map(|&e| ElementKey::from(e)).collect(),
            )
        })
        .collect()
}

fn build_bssf(items: &[(Oid, Vec<ElementKey>)], f: u32, m: u32, threads: usize) -> Bssf {
    let disk = Arc::new(Disk::new());
    let io = Arc::clone(&disk) as Arc<dyn PageIo>;
    let mut b = Bssf::create(io, "bench", SignatureConfig::new(f, m).unwrap()).unwrap();
    b.bulk_load(items).unwrap();
    b.set_parallelism(threads);
    b
}

fn build_ssf(items: &[(Oid, Vec<ElementKey>)], f: u32, m: u32, threads: usize) -> Ssf {
    let disk = Arc::new(Disk::new());
    let io = Arc::clone(&disk) as Arc<dyn PageIo>;
    let mut s = Ssf::create(io, "bench", SignatureConfig::new(f, m).unwrap()).unwrap();
    for (oid, set) in items {
        s.insert(*oid, set).unwrap();
    }
    s.set_parallelism(threads);
    s
}

fn queries(superset: bool, d_q: u32) -> Vec<SetQuery> {
    let mut qg = QueryGen::new(DOMAIN, 0xBE);
    (0..4)
        .map(|_| {
            let keys: Vec<ElementKey> = qg.random(d_q).into_iter().map(ElementKey::from).collect();
            if superset {
                SetQuery::has_subset(keys)
            } else {
                SetQuery::in_subset(keys)
            }
        })
        .collect()
}

fn parallel_scan(c: &mut Criterion) {
    let items = sets();
    let threads = [1usize, 2, 4, 8];

    // ⊇ at m_opt = 35: D_q = 3 queries AND ~100 slice reads (400 pages).
    let mut group = c.benchmark_group("parallel_scan_bssf_superset");
    group.sample_size(10);
    let qs = queries(true, 3);
    for &t in &threads {
        let bssf = build_bssf(&items, 500, 35, t);
        group.bench_with_input(BenchmarkId::new("threads", t), &qs, |b, qs| {
            b.iter(|| {
                qs.iter()
                    .map(|q| bssf.candidates(q).unwrap().len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();

    // ⊆ at m = 2: ~480 zero-slices ORed (1,900+ pages per query).
    let mut group = c.benchmark_group("parallel_scan_bssf_subset");
    group.sample_size(10);
    let qs = queries(false, 50);
    for &t in &threads {
        let bssf = build_bssf(&items, 500, 2, t);
        group.bench_with_input(BenchmarkId::new("threads", t), &qs, |b, qs| {
            b.iter(|| {
                qs.iter()
                    .map(|q| bssf.candidates(q).unwrap().len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();

    // SSF full scan, batched kernels, page-partitioned across workers.
    let mut group = c.benchmark_group("parallel_scan_ssf_fullscan");
    group.sample_size(10);
    let qs = queries(true, 3);
    for &t in &threads {
        let ssf = build_ssf(&items, 500, 35, t);
        group.bench_with_input(BenchmarkId::new("threads", t), &qs, |b, qs| {
            b.iter(|| {
                qs.iter()
                    .map(|q| ssf.candidates(q).unwrap().len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, parallel_scan);
criterion_main!(benches);
