//! Figure 8 workload: plain `T ⊆ Q` retrieval — SSF vs BSSF vs NIX across
//! query cardinalities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setsig_bench::{bench_db, subset_query};

fn fig8(c: &mut Criterion) {
    let sim = bench_db(10);
    let ssf = sim.build_ssf(500, 2);
    let bssf = sim.build_bssf(500, 2);
    let nix = sim.build_nix();

    let mut group = c.benchmark_group("fig8_subset_plain");
    group.sample_size(10);
    for d_q in [10u32, 100, 400] {
        let q = subset_query(&sim, d_q, 80 + d_q as u64);
        group.bench_with_input(BenchmarkId::new("ssf", d_q), &q, |b, q| {
            b.iter(|| sim.measure_facility(&ssf, q))
        });
        group.bench_with_input(BenchmarkId::new("bssf", d_q), &q, |b, q| {
            b.iter(|| sim.measure_facility(&bssf, q))
        });
        group.bench_with_input(BenchmarkId::new("nix", d_q), &q, |b, q| {
            b.iter(|| sim.measure_facility(&nix, q))
        });
    }
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
