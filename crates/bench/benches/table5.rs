//! Table 5 workload: building the nested index (whose size the table
//! reports) and evaluating its analytic storage model.

use criterion::{criterion_group, criterion_main, Criterion};
use setsig_bench::bench_db;
use setsig_core::SetAccessFacility;
use setsig_costmodel::{NixModel, Params};

fn table5(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_nix_storage");
    group.sample_size(10);
    group.bench_function("model_dt10_dt100", |b| {
        b.iter(|| {
            let p = Params::paper();
            (NixModel::new(p, 10).sc(), NixModel::new(p, 100).sc())
        })
    });
    let sim = bench_db(10);
    group.bench_function("build_nix_dt10", |b| {
        b.iter(|| {
            let nix = sim.build_nix();
            nix.storage_pages().unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, table5);
criterion_main!(benches);
