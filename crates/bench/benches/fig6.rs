//! Figure 6 workload: smart `T ⊇ Q` retrieval at D_t = 10 — plain vs smart
//! strategies on BSSF and NIX.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setsig_bench::{bench_db, superset_query};

fn fig6(c: &mut Criterion) {
    let sim = bench_db(10);
    let bssf = sim.build_bssf(500, 2);
    let nix = sim.build_nix();

    let mut group = c.benchmark_group("fig6_smart_superset_dt10");
    group.sample_size(20);
    for d_q in [2u32, 5, 10] {
        let q = superset_query(&sim, d_q, 60 + d_q as u64);
        group.bench_with_input(BenchmarkId::new("bssf_plain", d_q), &q, |b, q| {
            b.iter(|| sim.measure_facility(&bssf, q))
        });
        group.bench_with_input(BenchmarkId::new("bssf_smart", d_q), &q, |b, q| {
            b.iter(|| sim.measure_smart(&bssf, q, || bssf.candidates_superset_smart(q, 2)))
        });
        group.bench_with_input(BenchmarkId::new("nix_plain", d_q), &q, |b, q| {
            b.iter(|| sim.measure_facility(&nix, q))
        });
        group.bench_with_input(BenchmarkId::new("nix_smart", d_q), &q, |b, q| {
            b.iter(|| sim.measure_smart(&nix, q, || nix.candidates_superset_smart(q, 2)))
        });
    }
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
