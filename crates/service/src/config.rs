//! Service sizing knobs: shard count, admission-queue depth, worker count.

use setsig_core::{Error, Result};

/// How a [`QueryService`](crate::QueryService) is laid out: how many
/// shards the store is hash-partitioned into, how deep the bounded
/// admission queue is, and how many worker threads drain it.
///
/// The environment spelling is `SETSIG_SHARDS` / `SETSIG_QUEUE_DEPTH`
/// (parsed by the experiments crate's `EngineConfig`, which fails loudly
/// on malformed values rather than defaulting); this struct is the
/// programmatic equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Number of hash partitions (≥ 1). One facility instance per shard.
    pub shards: usize,
    /// Bounded admission-queue depth in shard-tasks (≥ 1). A query fans
    /// out into `shards` tasks admitted as one batch, so the effective
    /// capacity is `max(queue_depth, shards)` — a single query always
    /// fits.
    pub queue_depth: usize,
    /// Worker threads draining the queue (≥ 1).
    pub workers: usize,
}

impl ServiceConfig {
    /// Default queue depth in shard-tasks.
    pub const DEFAULT_QUEUE_DEPTH: usize = 64;

    /// A config for `shards` partitions: default queue depth, one worker
    /// per shard (capped at 8 — beyond that the per-shard facilities'
    /// own scan parallelism is the better lever).
    pub fn new(shards: usize) -> Self {
        ServiceConfig {
            shards,
            queue_depth: Self::DEFAULT_QUEUE_DEPTH,
            workers: shards.clamp(1, 8),
        }
    }

    /// Sets the admission-queue depth (builder style).
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the worker count (builder style).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Validates the config: every knob must be ≥ 1. Zero shards cannot
    /// hold objects, a zero-depth queue admits nothing, and zero workers
    /// would leave admitted queries waiting forever — each is a config
    /// typo that must fail loudly, not hang.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("shards", self.shards),
            ("queue_depth", self.queue_depth),
            ("workers", self.workers),
        ] {
            if v == 0 {
                return Err(Error::BadConfig(format!(
                    "service {name} must be >= 1, got 0"
                )));
            }
        }
        Ok(())
    }

    /// The effective admission-queue capacity: `queue_depth`, raised to
    /// `shards` so one query's whole fan-out batch always fits.
    pub fn capacity(&self) -> usize {
        self.queue_depth.max(self.shards)
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_single_shard_serial() {
        let c = ServiceConfig::default();
        assert_eq!(c.shards, 1);
        assert_eq!(c.queue_depth, ServiceConfig::DEFAULT_QUEUE_DEPTH);
        assert_eq!(c.workers, 1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn workers_track_shards_with_a_cap() {
        assert_eq!(ServiceConfig::new(4).workers, 4);
        assert_eq!(ServiceConfig::new(32).workers, 8);
    }

    #[test]
    fn zero_knobs_are_rejected_by_name() {
        for (cfg, name) in [
            (ServiceConfig::new(1).with_queue_depth(0), "queue_depth"),
            (ServiceConfig::new(1).with_workers(0), "workers"),
            (
                ServiceConfig {
                    shards: 0,
                    queue_depth: 1,
                    workers: 1,
                },
                "shards",
            ),
        ] {
            let err = cfg.validate().unwrap_err();
            assert!(err.to_string().contains(name), "{err}");
        }
    }

    #[test]
    fn capacity_always_fits_one_batch() {
        let c = ServiceConfig::new(16).with_queue_depth(4);
        assert_eq!(c.capacity(), 16);
        assert_eq!(ServiceConfig::new(2).capacity(), 64);
    }
}
