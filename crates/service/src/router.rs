//! OID-hash sharding: partition assignment, per-shard reader/writer
//! access, and the merge of per-shard answers back into one.
//!
//! A [`ShardRouter`] owns `N` facility instances behind per-shard
//! `RwLock`s. Queries take read guards (many concurrent readers per
//! shard), updates take the one shard's write guard — so a live insert
//! only ever blocks queries on the shard that owns the OID. The router
//! never holds two shard guards at once and never holds any guard across
//! page I/O issued by *another* shard, which keeps the lock DAG flat:
//! `service.shard` ranks below the pool's `service.admission` (a worker
//! may query a shard while the admission lock is notionally above it in
//! the hierarchy) and above nothing.

use setsig_core::{
    CandidateSet, ElementKey, Error, Oid, Result, ScanStats, SetAccessFacility, SetQuery,
};
use setsig_pagestore::CacheStats;

use parking_lot::RwLock;

/// One query's answer: the candidate set plus the scan-stats charge, when
/// the facility reports one. The shape every [`SetAccessFacility`]
/// returns from `candidates_with_stats`, and what [`merge_parts`] pools.
pub type QueryAnswer = (CandidateSet, Option<ScanStats>);

/// The shard an OID belongs to, out of `shards` partitions.
///
/// A [SplitMix64](https://prng.di.unimi.it/splitmix64.c) finalizer over
/// the raw OID: sequential OIDs (the common allocation pattern) spread
/// uniformly instead of striping, and the assignment is a pure function
/// of `(oid, shards)` — stable across runs, which the differential
/// oracle tests rely on.
pub fn shard_of(oid: Oid, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard_of needs at least one shard");
    let mut z = oid.raw().wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z % shards.max(1) as u64) as usize
}

/// Merges per-shard `(candidates, stats)` parts into one answer: the
/// candidate union (shards hold disjoint OIDs, so this never collapses
/// duplicates in practice) and the *sum* of per-shard scan stats.
///
/// The page total is conserved — the merged charge is exactly what the
/// shards charged individually, no page counted twice or dropped. The
/// merged stats are `Some` only when every shard reported stats: a
/// single non-reporting facility makes the total meaningless.
pub fn merge_parts(parts: Vec<QueryAnswer>) -> QueryAnswer {
    let mut stats = Some(ScanStats::default());
    let mut sets = Vec::with_capacity(parts.len());
    for (set, part_stats) in parts {
        sets.push(set);
        stats = match (stats, part_stats) {
            (Some(acc), Some(s)) => Some(acc + s),
            _ => None,
        };
    }
    (CandidateSet::union(sets), stats)
}

/// One shard: a facility instance behind its reader/writer lock.
struct Shard<F> {
    // LOCK-ORDER: service.shard < service.admission
    facility: RwLock<F>,
}

/// Routes OIDs and queries across `N` facility shards.
///
/// Implements [`SetAccessFacility`] itself — a sharded store is a set
/// access facility whose filtering stage happens to run per-partition —
/// so the measurement harness (`SimDb::measure_facility`) and the
/// exhibits drive it unmodified. The trait's `candidates_with_stats`
/// runs the shards serially in-caller; the concurrent path is the
/// worker pool in [`QueryService`](crate::QueryService).
pub struct ShardRouter<F> {
    shards: Vec<Shard<F>>,
    name: &'static str,
}

impl<F: SetAccessFacility> ShardRouter<F> {
    /// Builds a router over `facilities`, one per shard. Fails on an
    /// empty vector — a router with nowhere to route is a config error,
    /// not an empty store.
    pub fn new(facilities: Vec<F>) -> Result<Self> {
        let Some(first) = facilities.first() else {
            return Err(Error::BadConfig(
                "shard router needs at least one facility".to_string(),
            ));
        };
        let name = first.name();
        Ok(ShardRouter {
            shards: facilities
                .into_iter()
                .map(|f| Shard {
                    facility: RwLock::new(f),
                })
                .collect(),
            name,
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `oid`.
    pub fn shard_of_oid(&self, oid: Oid) -> usize {
        shard_of(oid, self.shards.len())
    }

    /// Indexes `(oid, set)` in the owning shard, under that shard's
    /// write guard only — queries on the other shards proceed
    /// untouched.
    pub fn insert(&self, oid: Oid, set: &[ElementKey]) -> Result<()> {
        let mut guard = self.shards[self.shard_of_oid(oid)].facility.write();
        guard.insert(oid, set)
    }

    /// Removes `(oid, set)` from the owning shard.
    pub fn delete(&self, oid: Oid, set: &[ElementKey]) -> Result<()> {
        let mut guard = self.shards[self.shard_of_oid(oid)].facility.write();
        guard.delete(oid, set)
    }

    /// Runs `query`'s filtering stage on one shard, under its read
    /// guard. This is the unit of work the pool's workers execute
    /// concurrently.
    // HOT-PATH-BOUNDARY: fans out through SetAccessFacility dispatch; the
    // facility scan kernels carry their own HOT-PATH roots
    // COST: slices * pages_per_slice + oid_pages pages
    pub fn query_shard(&self, shard: usize, query: &SetQuery) -> Result<QueryAnswer> {
        let Some(s) = self.shards.get(shard) else {
            return Err(Error::BadQuery(format!(
                "shard {shard} out of range ({} shards)",
                self.shards.len()
            )));
        };
        let guard = s.facility.read();
        guard.candidates_with_stats(query)
    }

    /// Runs `query` on every shard serially (in the caller's thread) and
    /// merges — the oracle twin of the pooled path, and what the
    /// [`SetAccessFacility`] impl uses.
    // COST: shards * (slices * pages_per_slice + oid_pages) pages
    pub fn query_serial(&self, query: &SetQuery) -> Result<QueryAnswer> {
        let mut parts = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            parts.push(self.query_shard(shard, query)?);
        }
        Ok(merge_parts(parts))
    }

    /// Runs `f` with exclusive access to one shard's facility — the seam
    /// for concrete-type operations the trait does not carry (a per-shard
    /// `bulk_load`, flipping scan parallelism).
    pub fn with_shard_mut<R>(&self, shard: usize, f: impl FnOnce(&mut F) -> R) -> R {
        let mut guard = self.shards[shard].facility.write();
        f(&mut guard)
    }

    /// Total objects indexed across all shards.
    pub fn total_indexed(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.facility.read().indexed_count())
            .sum()
    }

    /// Total pages occupied across all shards.
    pub fn total_storage_pages(&self) -> Result<u64> {
        let mut total = 0u64;
        for s in &self.shards {
            total += s.facility.read().storage_pages()?;
        }
        Ok(total)
    }

    /// Summed buffer-pool counters, when at least one shard is cached.
    pub fn total_cache_stats(&self) -> Option<CacheStats> {
        let mut acc: Option<CacheStats> = None;
        for s in &self.shards {
            if let Some(stats) = s.facility.read().cache_stats() {
                acc = Some(acc.unwrap_or_default() + stats);
            }
        }
        acc
    }
}

impl<F: SetAccessFacility> SetAccessFacility for ShardRouter<F> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn insert(&mut self, oid: Oid, set: &[ElementKey]) -> Result<()> {
        ShardRouter::insert(self, oid, set)
    }

    fn delete(&mut self, oid: Oid, set: &[ElementKey]) -> Result<()> {
        ShardRouter::delete(self, oid, set)
    }

    fn candidates_with_stats(&self, query: &SetQuery) -> Result<(CandidateSet, Option<ScanStats>)> {
        self.query_serial(query)
    }

    fn indexed_count(&self) -> u64 {
        self.total_indexed()
    }

    fn storage_pages(&self) -> Result<u64> {
        self.total_storage_pages()
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        self.total_cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockFacility;

    #[test]
    fn shard_of_is_deterministic_and_total() {
        for shards in [1usize, 2, 7, 16] {
            for raw in 0..500u64 {
                let s = shard_of(Oid::new(raw), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(Oid::new(raw), shards), "stable");
            }
        }
    }

    #[test]
    fn shard_of_spreads_sequential_oids() {
        let shards = 8;
        let mut counts = vec![0u32; shards];
        for raw in 0..8000u64 {
            counts[shard_of(Oid::new(raw), shards)] += 1;
        }
        // Uniform would be 1000 per shard; accept a generous band. A
        // striping or constant assignment fails this by miles.
        for (i, c) in counts.iter().enumerate() {
            assert!((700..=1300).contains(c), "shard {i} got {c} of 8000");
        }
    }

    #[test]
    fn merge_conserves_stats_and_pools_candidates() {
        let parts = vec![
            (
                CandidateSet::new(vec![Oid::new(4), Oid::new(1)], false),
                Some(ScanStats {
                    logical_pages: 3,
                    physical_pages: 4,
                }),
            ),
            (
                CandidateSet::new(vec![Oid::new(2)], false),
                Some(ScanStats {
                    logical_pages: 5,
                    physical_pages: 5,
                }),
            ),
        ];
        let (set, stats) = merge_parts(parts);
        assert_eq!(set.oids, vec![Oid::new(1), Oid::new(2), Oid::new(4)]);
        assert_eq!(
            stats,
            Some(ScanStats {
                logical_pages: 8,
                physical_pages: 9
            })
        );
    }

    #[test]
    fn merge_drops_stats_if_any_shard_is_silent() {
        let parts = vec![
            (CandidateSet::new(vec![], false), Some(ScanStats::default())),
            (CandidateSet::new(vec![], false), None),
        ];
        assert_eq!(merge_parts(parts).1, None);
    }

    #[test]
    fn router_requires_a_shard() {
        assert!(ShardRouter::<MockFacility>::new(vec![]).is_err());
    }

    #[test]
    fn router_routes_writes_to_the_owning_shard_only() {
        let router = ShardRouter::new((0..4).map(|_| MockFacility::new()).collect::<Vec<_>>())
            .expect("non-empty");
        for raw in 0..100u64 {
            router
                .insert(Oid::new(raw), &[ElementKey::from(raw)])
                .unwrap();
        }
        assert_eq!(router.total_indexed(), 100);
        // Each object must live in exactly the shard the hash names.
        for raw in 0..100u64 {
            let owner = router.shard_of_oid(Oid::new(raw));
            for shard in 0..4 {
                let holds = router.with_shard_mut(shard, |f| f.contains(Oid::new(raw)));
                assert_eq!(holds, shard == owner, "oid {raw} shard {shard}");
            }
        }
        // Deleting removes from the owner and only the owner.
        router
            .delete(Oid::new(7), &[ElementKey::from(7u64)])
            .unwrap();
        assert_eq!(router.total_indexed(), 99);
    }

    #[test]
    fn serial_query_merges_all_shards() {
        let router = ShardRouter::new((0..3).map(|_| MockFacility::new()).collect::<Vec<_>>())
            .expect("non-empty");
        for raw in 0..30u64 {
            router
                .insert(Oid::new(raw), &[ElementKey::from(raw % 5)])
                .unwrap();
        }
        let q = SetQuery::has_subset(vec![ElementKey::from(2u64)]);
        let (set, stats) = router.query_serial(&q).unwrap();
        let expected: Vec<Oid> = (0..30u64).filter(|r| r % 5 == 2).map(Oid::new).collect();
        assert_eq!(set.oids, expected);
        // MockFacility charges one logical page per query; the merged
        // charge is the conserved sum over shards.
        assert_eq!(stats.map(|s| s.logical_pages), Some(3));
    }
}
