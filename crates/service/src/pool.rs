//! The worker pool behind [`QueryService`]: a bounded admission queue of
//! per-shard tasks, drained by a fixed set of worker threads.
//!
//! A query fans out into one task per shard, admitted as a single batch
//! (all-or-nothing under the queue lock, so two queries' tasks never
//! interleave partially when the queue is near capacity). Workers pop
//! tasks, run the shard's filtering stage under that shard's read guard,
//! and deposit the part; the last part to arrive wakes the waiter, which
//! merges candidates and sums [`ScanStats`].
//!
//! The vendored `parking_lot` stand-in has no `Condvar`, so the queue and
//! the per-query completion latch use `std::sync` primitives (the same
//! choice as the BSSF scan pipeline). Their `lock()/wait()` poisoning
//! `unwrap`s are justified in `crates/xtask/allow/panics.allow`: a
//! poisoned lock means another worker panicked mid-update, and
//! propagating that panic beats limping on with torn state.
//!
//! Lock DAG (see DESIGN.md): `service.admission` (the queue) and
//! `service.pending` (a query's completion latch) are never held
//! together, and neither is ever held while a shard lock
//! (`service.shard`, in `router.rs`) is acquired — a worker finishes all
//! queue bookkeeping, *then* touches the shard, *then* takes the latch.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use setsig_core::{
    CandidateSet, ElementKey, Error, Oid, Result, ScanStats, SetAccessFacility, SetQuery,
};
use setsig_obs::{Counter, Gauge, Histogram, MetricsRegistry, Recorder};
use setsig_pagestore::CacheStats;

use crate::config::ServiceConfig;
use crate::router::{merge_parts, QueryAnswer, ShardRouter};

/// One unit of queued work: run the pending query against one shard.
struct Task {
    shard: usize,
    pending: Arc<Pending>,
}

/// A fanned-out query awaiting its per-shard parts.
struct Pending {
    query: SetQuery,
    /// Never held together with any other lock: workers deposit a part
    /// and release; waiters re-check under the condvar.
    // LOCK-ORDER: service.pending leaf
    state: Mutex<PendingState>,
    finished: Condvar,
    /// When the batch entered the queue — admission latency is measured
    /// from here to each task's dequeue.
    enqueued: Instant,
}

struct PendingState {
    /// Part `i` is shard `i`'s answer; deposited exactly once.
    parts: Vec<Option<QueryAnswer>>,
    completed: usize,
    failed: Option<Error>,
}

impl Pending {
    /// Deposits shard `shard`'s result and wakes the waiter when the
    /// query is fully answered (or has failed). A part already present
    /// is never overwritten — one answer per shard, exactly once.
    fn complete(&self, shard: usize, result: Result<QueryAnswer>) {
        let mut st = self.state.lock().unwrap();
        match result {
            Ok(part) => {
                if st.parts[shard].is_none() {
                    st.parts[shard] = Some(part);
                }
            }
            Err(e) => {
                if st.failed.is_none() {
                    st.failed = Some(e);
                }
            }
        }
        st.completed += 1;
        let done = st.failed.is_some() || st.completed >= st.parts.len();
        drop(st);
        if done {
            self.finished.notify_all();
        }
    }
}

/// A handle to one submitted query; redeem with [`Ticket::wait`].
pub struct Ticket {
    pending: Arc<Pending>,
}

impl Ticket {
    /// Blocks until every shard has answered, then merges: candidate
    /// union plus summed scan stats (see
    /// [`merge_parts`](crate::merge_parts)). Returns the first shard
    /// error if any shard failed.
    pub fn wait(self) -> Result<QueryAnswer> {
        let mut st = self.pending.state.lock().unwrap();
        while st.failed.is_none() && st.completed < st.parts.len() {
            st = self.pending.finished.wait(st).unwrap();
        }
        if let Some(e) = st.failed.take() {
            return Err(e);
        }
        let mut parts = Vec::with_capacity(st.parts.len());
        for slot in &mut st.parts {
            match slot.take() {
                Some(part) => parts.push(part),
                None => {
                    return Err(Error::Corrupted(
                        "query completed with a missing shard part".to_string(),
                    ))
                }
            }
        }
        drop(st);
        Ok(merge_parts(parts))
    }
}

/// The admission queue: FIFO of shard-tasks plus the open/closed flag.
struct Queue {
    tasks: VecDeque<Task>,
    open: bool,
}

/// Pre-resolved metric handles — name→metric lookup happens once at
/// construction, not on the query path.
struct Metrics {
    queue_depth: Arc<Gauge>,
    queue_peak: Arc<Gauge>,
    admission_ns: Arc<Histogram>,
    shards: Vec<ShardMetrics>,
}

struct ShardMetrics {
    queries: Arc<Counter>,
    scan_pages: Arc<Histogram>,
    inflight: Arc<Gauge>,
}

impl Metrics {
    fn resolve(registry: &MetricsRegistry, shards: usize) -> Metrics {
        Metrics {
            queue_depth: registry.gauge("service.queue_depth"),
            queue_peak: registry.gauge("service.queue_depth_peak"),
            admission_ns: registry.histogram("service.admission_ns"),
            shards: (0..shards)
                .map(|i| ShardMetrics {
                    queries: registry.counter(&format!("service.shard{i}.queries")),
                    scan_pages: registry.histogram(&format!("service.shard{i}.scan_pages")),
                    inflight: registry.gauge(&format!("service.shard{i}.inflight")),
                })
                .collect(),
        }
    }
}

/// Shared state between the service handle and its workers.
struct PoolInner<F> {
    router: ShardRouter<F>,
    /// Held only for queue bookkeeping (push/pop/depth gauges); never
    /// while touching a shard or a pending latch.
    // LOCK-ORDER: service.admission
    queue: Mutex<Queue>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    metrics: Option<Metrics>,
}

/// A sharded, concurrently-serving set access facility: OID-hash
/// partitions behind a [`ShardRouter`], queries fanned across a worker
/// pool with bounded, batched admission, live inserts/deletes
/// interleaving with readers per shard.
///
/// Dropping the service closes the queue, lets the workers drain every
/// admitted task, and joins them — no admitted query is lost.
pub struct QueryService<F: SetAccessFacility + Send + Sync + 'static> {
    inner: Arc<PoolInner<F>>,
    workers: Vec<JoinHandle<()>>,
    config: ServiceConfig,
}

impl<F: SetAccessFacility + Send + Sync + 'static> QueryService<F> {
    /// Builds a service over `facilities` (one per shard, in shard
    /// order) with no observability attached.
    pub fn new(facilities: Vec<F>, config: ServiceConfig) -> Result<Self> {
        Self::with_recorder(facilities, config, None)
    }

    /// Builds a service wired to `recorder`: queue-depth and peak
    /// gauges, an admission-latency histogram, and per-shard query
    /// counters / scan-page histograms / in-flight gauges, all under
    /// `service.*` names (schema in DESIGN.md).
    pub fn with_recorder(
        facilities: Vec<F>,
        config: ServiceConfig,
        recorder: Option<Arc<Recorder>>,
    ) -> Result<Self> {
        config.validate()?;
        if facilities.len() != config.shards {
            return Err(Error::BadConfig(format!(
                "service configured for {} shards but given {} facilities",
                config.shards,
                facilities.len()
            )));
        }
        let router = ShardRouter::new(facilities)?;
        let metrics = recorder
            .as_ref()
            .map(|r| Metrics::resolve(r.registry(), config.shards));
        let inner = Arc::new(PoolInner {
            router,
            queue: Mutex::new(Queue {
                tasks: VecDeque::new(),
                open: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: config.capacity(),
            metrics,
        });
        let workers = (0..config.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(QueryService {
            inner,
            workers,
            config,
        })
    }

    /// The sizing this service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The router, for shard introspection and concrete-type access
    /// ([`ShardRouter::with_shard_mut`]).
    pub fn router(&self) -> &ShardRouter<F> {
        &self.inner.router
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.router.shard_count()
    }

    /// Admits `query` as one batch of per-shard tasks, blocking while
    /// the bounded queue lacks room for the whole batch. Returns a
    /// [`Ticket`] to redeem for the merged answer.
    pub fn submit(&self, query: &SetQuery) -> Ticket {
        let shards = self.inner.router.shard_count();
        let pending = Arc::new(Pending {
            query: query.clone(),
            state: Mutex::new(PendingState {
                parts: vec![None; shards],
                completed: 0,
                failed: None,
            }),
            finished: Condvar::new(),
            enqueued: Instant::now(),
        });
        {
            let mut q = self.inner.queue.lock().unwrap();
            while q.tasks.len() + shards > self.inner.capacity {
                q = self.inner.not_full.wait(q).unwrap();
            }
            for shard in 0..shards {
                q.tasks.push_back(Task {
                    shard,
                    pending: Arc::clone(&pending),
                });
            }
            if let Some(m) = &self.inner.metrics {
                let depth = q.tasks.len() as i64;
                m.queue_depth.set(depth);
                m.queue_peak.set_max(depth);
            }
        }
        self.inner.not_empty.notify_all();
        Ticket { pending }
    }

    /// Submits and waits: the merged candidates plus summed scan stats.
    pub fn query(&self, query: &SetQuery) -> Result<QueryAnswer> {
        self.submit(query).wait()
    }

    /// Batched admission: submits every query before redeeming any
    /// ticket, so the whole burst is in flight across the pool at once.
    pub fn query_batch(&self, queries: &[SetQuery]) -> Result<Vec<QueryAnswer>> {
        let tickets: Vec<Ticket> = queries.iter().map(|q| self.submit(q)).collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// Live update: indexes `(oid, set)` under the owning shard's write
    /// guard, interleaving with in-flight readers on other shards.
    pub fn insert(&self, oid: Oid, set: &[ElementKey]) -> Result<()> {
        self.inner.router.insert(oid, set)
    }

    /// Live update: removes `(oid, set)` from the owning shard.
    pub fn delete(&self, oid: Oid, set: &[ElementKey]) -> Result<()> {
        self.inner.router.delete(oid, set)
    }
}

/// Worker body: pop a task (blocking while the queue is open and
/// empty), run the shard query, deposit the part. Exits once the queue
/// is closed *and* drained, so shutdown never drops admitted work.
// HOT-PATH: service.dispatch
// COST: tasks * (slices * pages_per_slice + oid_pages) pages
fn worker_loop<F: SetAccessFacility + Send + Sync>(inner: &PoolInner<F>) {
    loop {
        let task = {
            let mut q = inner.queue.lock().unwrap();
            loop {
                if let Some(t) = q.tasks.pop_front() {
                    if let Some(m) = &inner.metrics {
                        m.queue_depth.set(q.tasks.len() as i64);
                    }
                    break Some(t);
                }
                if !q.open {
                    break None;
                }
                q = inner.not_empty.wait(q).unwrap();
            }
        };
        let Some(task) = task else { return };
        inner.not_full.notify_all();
        if let Some(m) = &inner.metrics {
            m.admission_ns.record(
                u64::try_from(task.pending.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
            m.shards[task.shard].inflight.add(1);
        }
        let result = inner.router.query_shard(task.shard, &task.pending.query);
        if let Some(m) = &inner.metrics {
            m.shards[task.shard].inflight.add(-1);
            m.shards[task.shard].queries.inc();
            if let Ok((_, Some(stats))) = &result {
                m.shards[task.shard].scan_pages.record(stats.logical_pages);
            }
        }
        task.pending.complete(task.shard, result);
    }
}

impl<F: SetAccessFacility + Send + Sync + 'static> SetAccessFacility for QueryService<F> {
    fn name(&self) -> &'static str {
        self.inner.router.name()
    }

    fn insert(&mut self, oid: Oid, set: &[ElementKey]) -> Result<()> {
        QueryService::insert(self, oid, set)
    }

    fn delete(&mut self, oid: Oid, set: &[ElementKey]) -> Result<()> {
        QueryService::delete(self, oid, set)
    }

    fn candidates_with_stats(&self, query: &SetQuery) -> Result<(CandidateSet, Option<ScanStats>)> {
        self.query(query)
    }

    fn indexed_count(&self) -> u64 {
        self.inner.router.total_indexed()
    }

    fn storage_pages(&self) -> Result<u64> {
        self.inner.router.total_storage_pages()
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        self.inner.router.total_cache_stats()
    }
}

impl<F: SetAccessFacility + Send + Sync + 'static> Drop for QueryService<F> {
    fn drop(&mut self) {
        {
            let mut q = self.inner.queue.lock().unwrap();
            q.open = false;
        }
        self.inner.not_empty.notify_all();
        for w in self.workers.drain(..) {
            // A worker that panicked already poisoned what it held; the
            // panic surfaced to any waiter. Do not double-panic in Drop.
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockFacility;

    fn service(shards: usize) -> QueryService<MockFacility> {
        QueryService::new(
            (0..shards).map(|_| MockFacility::new()).collect(),
            ServiceConfig::new(shards),
        )
        .expect("valid config")
    }

    fn key(e: u64) -> ElementKey {
        ElementKey::from(e)
    }

    #[test]
    fn mismatched_shard_count_is_rejected() {
        let Err(err) = QueryService::new(vec![MockFacility::new()], ServiceConfig::new(2)) else {
            panic!("mismatched shard count accepted")
        };
        assert!(err.to_string().contains("2 shards"), "{err}");
    }

    #[test]
    fn pooled_answers_match_the_serial_router() {
        let svc = service(4);
        for raw in 0..200u64 {
            svc.insert(Oid::new(raw), &[key(raw % 7), key(raw % 3)])
                .unwrap();
        }
        for e in 0..7u64 {
            let q = SetQuery::has_subset(vec![key(e)]);
            let (pooled, pooled_stats) = svc.query(&q).unwrap();
            let (serial, serial_stats) = svc.router().query_serial(&q).unwrap();
            assert_eq!(pooled, serial, "element {e}");
            assert_eq!(pooled_stats, serial_stats, "element {e}");
        }
    }

    #[test]
    fn batch_of_queries_all_answered_exactly_once() {
        let svc = service(3);
        for raw in 0..60u64 {
            svc.insert(Oid::new(raw), &[key(raw % 6)]).unwrap();
        }
        let queries: Vec<SetQuery> = (0..6u64)
            .map(|e| SetQuery::has_subset(vec![key(e)]))
            .collect();
        let answers = svc.query_batch(&queries).unwrap();
        assert_eq!(answers.len(), queries.len());
        for (e, (set, _)) in answers.iter().enumerate() {
            let expected: Vec<Oid> = (0..60u64)
                .filter(|r| r % 6 == e as u64)
                .map(Oid::new)
                .collect();
            assert_eq!(set.oids, expected, "query {e}");
        }
    }

    #[test]
    fn tiny_queue_still_admits_whole_batches() {
        // queue_depth 1 < shards 4: capacity is raised to one batch, so
        // admission never deadlocks on its own fan-out.
        let svc = QueryService::new(
            (0..4).map(|_| MockFacility::new()).collect::<Vec<_>>(),
            ServiceConfig::new(4).with_queue_depth(1).with_workers(2),
        )
        .expect("valid config");
        for raw in 0..40u64 {
            svc.insert(Oid::new(raw), &[key(raw % 2)]).unwrap();
        }
        let queries: Vec<SetQuery> = (0..8u64)
            .map(|i| SetQuery::has_subset(vec![key(i % 2)]))
            .collect();
        let answers = svc.query_batch(&queries).unwrap();
        assert_eq!(answers.len(), 8);
    }

    #[test]
    fn shard_errors_propagate_to_the_waiter() {
        let svc = service(2);
        // MockFacility rejects empty query sets with BadQuery.
        let q = SetQuery::has_subset(vec![]);
        let err = svc.query(&q).unwrap_err();
        assert!(matches!(err, Error::BadQuery(_)), "{err}");
    }

    #[test]
    fn concurrent_callers_and_writers_never_lose_answers() {
        let svc = Arc::new(service(4));
        for raw in 0..100u64 {
            svc.insert(Oid::new(raw), &[key(raw % 5)]).unwrap();
        }
        let writer = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                for raw in 100..200u64 {
                    svc.insert(Oid::new(raw), &[key(raw % 5)]).unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..4u64)
            .map(|t| {
                let svc = Arc::clone(&svc);
                std::thread::spawn(move || {
                    let q = SetQuery::has_subset(vec![key(t % 5)]);
                    for _ in 0..20 {
                        let (set, _) = svc.query(&q).unwrap();
                        // Every pre-existing answer must be present
                        // whatever the writer is doing (no false
                        // negatives on committed objects).
                        for raw in (0..100u64).filter(|r| r % 5 == t % 5) {
                            assert!(set.oids.contains(&Oid::new(raw)), "lost oid {raw}");
                        }
                    }
                })
            })
            .collect();
        writer.join().expect("writer");
        for r in readers {
            r.join().expect("reader");
        }
        assert_eq!(svc.router().total_indexed(), 200);
    }

    #[test]
    fn drop_drains_admitted_work() {
        let svc = service(2);
        for raw in 0..20u64 {
            svc.insert(Oid::new(raw), &[key(raw % 2)]).unwrap();
        }
        let tickets: Vec<Ticket> = (0..10)
            .map(|i| svc.submit(&SetQuery::has_subset(vec![key(i % 2)])))
            .collect();
        drop(svc);
        for t in tickets {
            t.wait().expect("admitted query answered across shutdown");
        }
    }

    #[test]
    fn recorder_sees_queue_and_shard_metrics() {
        let rec = Arc::new(Recorder::new());
        let svc = QueryService::with_recorder(
            (0..2).map(|_| MockFacility::new()).collect::<Vec<_>>(),
            ServiceConfig::new(2),
            Some(Arc::clone(&rec)),
        )
        .expect("valid config");
        for raw in 0..20u64 {
            svc.insert(Oid::new(raw), &[key(raw % 2)]).unwrap();
        }
        let queries: Vec<SetQuery> = (0..8u64)
            .map(|i| SetQuery::has_subset(vec![key(i % 2)]))
            .collect();
        svc.query_batch(&queries).unwrap();
        let snap = rec.registry().snapshot();
        let per_shard: u64 = (0..2)
            .map(|i| {
                snap.get_counter(&format!("service.shard{i}.queries"))
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(per_shard, 16, "8 queries × 2 shards");
        assert_eq!(
            snap.get_gauge("service.queue_depth"),
            Some(0),
            "drained queue reads zero"
        );
        assert!(snap.get_gauge("service.queue_depth_peak").unwrap_or(0) >= 1);
        let adm = snap
            .get_histogram("service.admission_ns")
            .expect("histogram");
        assert_eq!(adm.count, 16);
        for i in 0..2 {
            assert_eq!(
                snap.get_gauge(&format!("service.shard{i}.inflight")),
                Some(0),
                "shard {i} settled"
            );
        }
    }
}
