//! Sharded concurrent query service over set access facilities.
//!
//! The paper's experiments (Ishikawa, Kitagawa & Ohbo, SIGMOD '93)
//! measure each signature-file organisation as a single-threaded scan.
//! This crate is the serving layer above those facilities: the object
//! store and its signature files are hash-partitioned into `N` shards
//! by OID ([`shard_of`]), a [`ShardRouter`] gives each shard
//! independent reader/writer access, and a [`QueryService`] fans every
//! [`SetQuery`](setsig_core::SetQuery) across a worker pool — bounded
//! admission queue, batched per-query admission, per-shard concurrent
//! `candidates_with_stats`, and a merge ([`merge_parts`]) that unions
//! candidates and *conserves* the scan-page charge (merged stats are
//! the exact sum of per-shard stats).
//!
//! Both [`ShardRouter`] and [`QueryService`] implement
//! [`SetAccessFacility`](setsig_core::SetAccessFacility) themselves, so
//! the measurement harness and exhibit pipeline drive a sharded store
//! exactly like a flat one. With one shard (the default —
//! `SETSIG_SHARDS=1`) the service is answer- and page-identical to the
//! facility it wraps, which is what keeps the drift gates meaningful.
//!
//! Correctness story (exercised by the repo-level differential tests):
//! a sharded, concurrently-updated service must agree with a serial,
//! single-shard oracle at every quiescent point — same candidates, no
//! OID duplicated or dropped across the shard boundary, page totals
//! conserved under the merge.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod pool;
mod router;
#[cfg(test)]
pub(crate) mod testutil;

pub use config::ServiceConfig;
pub use pool::{QueryService, Ticket};
pub use router::{merge_parts, shard_of, QueryAnswer, ShardRouter};
