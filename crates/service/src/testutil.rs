//! Test-only facility: an exact, in-memory [`SetAccessFacility`] with a
//! deterministic one-page scan charge per query. Lets router/pool tests
//! assert merged candidate sets and conserved stats without paging real
//! signature files.

use std::collections::BTreeMap;

use setsig_core::{
    verify_predicate, CandidateSet, ElementKey, ElementSet, Error, Oid, Result, ScanStats,
    SetAccessFacility, SetQuery,
};

/// Exact in-memory store: every answer is evaluated with
/// [`verify_predicate`], so candidate sets are the ground truth (no
/// false drops *or* false positives), and every query charges exactly
/// one logical and one physical page.
pub(crate) struct MockFacility {
    sets: BTreeMap<Oid, ElementSet>,
}

impl MockFacility {
    pub(crate) fn new() -> Self {
        MockFacility {
            sets: BTreeMap::new(),
        }
    }

    /// Whether this instance indexes `oid` — shard-placement assertions.
    pub(crate) fn contains(&self, oid: Oid) -> bool {
        self.sets.contains_key(&oid)
    }
}

impl SetAccessFacility for MockFacility {
    fn name(&self) -> &'static str {
        "MOCK"
    }

    fn insert(&mut self, oid: Oid, set: &[ElementKey]) -> Result<()> {
        self.sets.insert(oid, set.iter().cloned().collect());
        Ok(())
    }

    fn delete(&mut self, oid: Oid, _set: &[ElementKey]) -> Result<()> {
        match self.sets.remove(&oid) {
            Some(_) => Ok(()),
            None => Err(Error::OidNotFound(oid)),
        }
    }

    fn candidates_with_stats(&self, query: &SetQuery) -> Result<(CandidateSet, Option<ScanStats>)> {
        if query.elements.is_empty() {
            return Err(Error::BadQuery("empty query set".to_string()));
        }
        let oids: Vec<Oid> = self
            .sets
            .iter()
            .filter(|(_, target)| verify_predicate(query.predicate, target, &query.elements))
            .map(|(&oid, _)| oid)
            .collect();
        Ok((
            CandidateSet::new(oids, true),
            Some(ScanStats {
                logical_pages: 1,
                physical_pages: 1,
            }),
        ))
    }

    fn indexed_count(&self) -> u64 {
        self.sets.len() as u64
    }

    fn storage_pages(&self) -> Result<u64> {
        Ok(1)
    }
}
