//! # setsig-pagestore — a paged disk simulator with I/O accounting
//!
//! The cost model of Ishikawa, Kitagawa & Ohbo (SIGMOD 1993) measures every
//! access facility in **page accesses**: the number of disk pages read or
//! written while answering a query or applying an update. This crate is the
//! substrate that makes those numbers observable in a real implementation.
//!
//! It provides:
//!
//! * [`Page`] — a fixed-size (4096-byte, the paper's `P`) disk page with
//!   little-endian scalar accessors,
//! * [`Disk`] — an in-memory simulated disk holding named paged files, with
//!   per-file read/write counters and sequential-vs-random access
//!   classification,
//! * [`PagedFile`] — a cheap handle binding a [`FileId`] to its [`Disk`],
//! * [`BufferPool`] — an optional LRU page cache used by the ablation
//!   experiments and the cached query engines (the paper assumes no
//!   buffering),
//! * [`IoSnapshot`] / [`IoDelta`] — counter snapshots for measuring the cost
//!   of a single operation,
//! * binary serialization of a whole disk image ([`Disk::save_to`] /
//!   [`Disk::load_from`]) so example databases can be persisted.
//!
//! All counters are updated under a single [`parking_lot::Mutex`]; the
//! simulator is shared between the signature files, the OID file, the object
//! store and the nested index via `Arc<Disk>`, exactly like the single disk
//! arm the paper's model charges.
//!
//! ```
//! use setsig_pagestore::{Disk, Page, PAGE_SIZE};
//! use std::sync::Arc;
//!
//! let disk = Arc::new(Disk::new());
//! let f = disk.create_file("signatures");
//! let mut p = Page::zeroed();
//! p.write_u64(0, 0xdead_beef);
//! let n = disk.append_page(f, &p).unwrap();
//! assert_eq!(n, 0);
//! let back = disk.read_page(f, 0).unwrap();
//! assert_eq!(back.read_u64(0), 0xdead_beef);
//! assert_eq!(disk.snapshot().reads, 1);
//! assert_eq!(disk.snapshot().writes, 1);
//! ```

// `deny` rather than `forbid`: this crate owns the raw-I/O and paging
// substrate, where a future mmap or io_uring backend may need a scoped,
// SAFETY-commented `unsafe` block (which `forbid` could not re-allow).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod disk;
mod error;
mod file;
mod page;
mod persist;
mod stats;

pub use cache::{BufferPool, CacheStats};
pub use disk::{Disk, FileId, FileInfo, PageIo};
pub use error::{Error, Result};
pub use file::PagedFile;
pub use page::{Page, PAGE_SIZE};
pub use stats::{AccessKind, FileStats, IoDelta, IoSnapshot};
