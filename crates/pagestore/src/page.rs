//! Fixed-size disk pages.

/// Size of a disk page in bytes — the paper's constant `P = 4096` (Table 2).
pub const PAGE_SIZE: usize = 4096;

/// A single disk page.
///
/// Pages are heap-allocated fixed-size byte arrays with helpers for reading
/// and writing little-endian scalars and byte ranges at arbitrary offsets.
/// All accessors panic on out-of-bounds offsets: page layouts are computed by
/// the storage structures themselves, so an out-of-range offset is a logic
/// error, not a recoverable condition.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// Creates a page filled with zero bytes.
    pub fn zeroed() -> Self {
        Page {
            bytes: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap(),
        }
    }

    /// Creates a page from an exact `PAGE_SIZE`-byte buffer.
    pub fn from_bytes(bytes: [u8; PAGE_SIZE]) -> Self {
        Page {
            bytes: Box::new(bytes),
        }
    }

    /// The raw page contents.
    #[inline]
    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }

    /// The raw page contents, mutably.
    #[inline]
    pub fn as_bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.bytes
    }

    /// Reads one byte at `off`.
    #[inline]
    pub fn read_u8(&self, off: usize) -> u8 {
        self.bytes[off]
    }

    /// Writes one byte at `off`.
    #[inline]
    pub fn write_u8(&mut self, off: usize, v: u8) {
        self.bytes[off] = v;
    }

    /// Reads a little-endian `u16` at `off`.
    #[inline]
    pub fn read_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes(self.bytes[off..off + 2].try_into().unwrap())
    }

    /// Writes a little-endian `u16` at `off`.
    #[inline]
    pub fn write_u16(&mut self, off: usize, v: u16) {
        self.bytes[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a little-endian `u32` at `off`.
    #[inline]
    pub fn read_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.bytes[off..off + 4].try_into().unwrap())
    }

    /// Writes a little-endian `u32` at `off`.
    #[inline]
    pub fn write_u32(&mut self, off: usize, v: u32) {
        self.bytes[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a little-endian `u64` at `off`.
    #[inline]
    pub fn read_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap())
    }

    /// Writes a little-endian `u64` at `off`.
    #[inline]
    pub fn write_u64(&mut self, off: usize, v: u64) {
        self.bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Returns the `len` bytes starting at `off`.
    #[inline]
    pub fn read_slice(&self, off: usize, len: usize) -> &[u8] {
        &self.bytes[off..off + len]
    }

    /// Copies `src` into the page starting at `off`.
    #[inline]
    pub fn write_slice(&mut self, off: usize, src: &[u8]) {
        self.bytes[off..off + src.len()].copy_from_slice(src);
    }

    /// Fills `len` bytes starting at `off` with `v`.
    #[inline]
    pub fn fill(&mut self, off: usize, len: usize, v: u8) {
        self.bytes[off..off + len].fill(v);
    }

    /// Tests a single bit; bit `i` lives in byte `i / 8`, LSB-first.
    ///
    /// This is the layout of a BSSF bit-slice page: bit position `i`
    /// corresponds to the signature at row `i` of the slice.
    #[inline]
    pub fn get_bit(&self, i: usize) -> bool {
        (self.bytes[i / 8] >> (i % 8)) & 1 == 1
    }

    /// Sets (`true`) or clears (`false`) a single bit, LSB-first.
    #[inline]
    pub fn set_bit(&mut self, i: usize, v: bool) {
        let byte = &mut self.bytes[i / 8];
        let mask = 1u8 << (i % 8);
        if v {
            *byte |= mask;
        } else {
            *byte &= !mask;
        }
    }

    /// True if every byte in the page is zero.
    pub fn is_zeroed(&self) -> bool {
        self.bytes.iter().all(|&b| b == 0)
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::zeroed()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nonzero = self.bytes.iter().filter(|&&b| b != 0).count();
        write!(f, "Page {{ nonzero_bytes: {nonzero}/{PAGE_SIZE} }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_all_zero() {
        let p = Page::zeroed();
        assert!(p.is_zeroed());
        assert_eq!(p.read_u64(0), 0);
        assert_eq!(p.read_u64(PAGE_SIZE - 8), 0);
    }

    #[test]
    fn scalar_roundtrips() {
        let mut p = Page::zeroed();
        p.write_u8(0, 0xab);
        p.write_u16(1, 0xbeef);
        p.write_u32(3, 0xdead_beef);
        p.write_u64(7, 0x0123_4567_89ab_cdef);
        assert_eq!(p.read_u8(0), 0xab);
        assert_eq!(p.read_u16(1), 0xbeef);
        assert_eq!(p.read_u32(3), 0xdead_beef);
        assert_eq!(p.read_u64(7), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn scalars_are_little_endian() {
        let mut p = Page::zeroed();
        p.write_u32(0, 0x0102_0304);
        assert_eq!(p.read_slice(0, 4), &[0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn slice_roundtrip() {
        let mut p = Page::zeroed();
        p.write_slice(100, b"hello world");
        assert_eq!(p.read_slice(100, 11), b"hello world");
        assert!(!p.is_zeroed());
    }

    #[test]
    fn bit_accessors_cover_full_page() {
        let mut p = Page::zeroed();
        for i in [0usize, 1, 7, 8, 9, 4095, 32767] {
            assert!(!p.get_bit(i));
            p.set_bit(i, true);
            assert!(p.get_bit(i));
        }
        // Clearing restores zero.
        for i in [0usize, 1, 7, 8, 9, 4095, 32767] {
            p.set_bit(i, false);
        }
        assert!(p.is_zeroed());
    }

    #[test]
    fn bit_layout_is_lsb_first() {
        let mut p = Page::zeroed();
        p.set_bit(0, true);
        assert_eq!(p.read_u8(0), 0b0000_0001);
        p.set_bit(7, true);
        assert_eq!(p.read_u8(0), 0b1000_0001);
        p.set_bit(8, true);
        assert_eq!(p.read_u8(1), 0b0000_0001);
    }

    #[test]
    fn fill_overwrites_range_only() {
        let mut p = Page::zeroed();
        p.fill(10, 5, 0xff);
        assert_eq!(p.read_u8(9), 0);
        assert_eq!(p.read_u8(10), 0xff);
        assert_eq!(p.read_u8(14), 0xff);
        assert_eq!(p.read_u8(15), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let p = Page::zeroed();
        let _ = p.read_u64(PAGE_SIZE - 7);
    }

    #[test]
    fn last_bit_of_page() {
        let mut p = Page::zeroed();
        let last = PAGE_SIZE * 8 - 1;
        p.set_bit(last, true);
        assert!(p.get_bit(last));
        assert_eq!(p.read_u8(PAGE_SIZE - 1), 0b1000_0000);
    }
}
