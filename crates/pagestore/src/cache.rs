//! An LRU buffer pool layered over a [`Disk`].
//!
//! The paper's cost model assumes **no buffering** — every page touched is a
//! page access. The buffer pool exists for the ablation experiments and for
//! the cached query engines: hot BSSF slice pages and SSF signature pages
//! are served from the pool on re-query. Reads served from the pool do not
//! reach the underlying disk and therefore do not appear in its counters;
//! the engines' *logical* page accounting ([`ScanStats`] in `setsig-core`)
//! stays cache-independent.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use crate::disk::{Disk, FileId, PageIo};
use crate::error::Result;
use crate::page::Page;
use crate::stats::IoSnapshot;

/// Hit/miss counters for a [`BufferPool`], split by tier: a read is served
/// by the pinned tier, the LRU pool, or the disk — exactly one of
/// `pinned_hits`, `hits`, `misses` counts it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read requests satisfied from the pinned in-RAM tier.
    pub pinned_hits: u64,
    /// Read requests satisfied from the LRU pool.
    pub hits: u64,
    /// Read requests that had to go to disk.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of reads served from memory (pinned tier or pool), or 0
    /// when idle.
    pub fn hit_rate(&self) -> f64 {
        let served = self.pinned_hits + self.hits;
        let total = served + self.misses;
        if total == 0 {
            0.0
        } else {
            served as f64 / total as f64
        }
    }
}

impl std::ops::Add for CacheStats {
    type Output = CacheStats;

    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            pinned_hits: self.pinned_hits + rhs.pinned_hits,
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            evictions: self.evictions + rhs.evictions,
        }
    }
}

impl std::ops::AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        *self = *self + rhs;
    }
}

/// Sentinel for "no neighbour" in the intrusive LRU list.
const NIL: usize = usize::MAX;

struct Frame {
    key: (FileId, u32),
    page: Page,
    /// Towards the MRU end.
    prev: usize,
    /// Towards the LRU end.
    next: usize,
}

struct PoolInner {
    frames: Vec<Frame>,
    map: HashMap<(FileId, u32), usize>,
    /// Most recently used frame, or [`NIL`] when empty.
    head: usize,
    /// Least recently used frame (the eviction victim), or [`NIL`].
    tail: usize,
    /// The pinned tier: pages admitted here are never evicted, served
    /// before the LRU list, and refreshed write-through like any frame.
    pinned: HashMap<(FileId, u32), Page>,
    /// Access counts driving pinned admission; tracked only while the
    /// pinned tier has room, cleared once it fills.
    heat: HashMap<(FileId, u32), u32>,
    stats: CacheStats,
}

impl PoolInner {
    fn unlink(&mut self, slot: usize) {
        let (p, n) = (self.frames[slot].prev, self.frames[slot].next);
        if p != NIL {
            self.frames[p].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.frames[n].prev = p;
        } else {
            self.tail = p;
        }
        self.frames[slot].prev = NIL;
        self.frames[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.frames[slot].prev = NIL;
        self.frames[slot].next = self.head;
        if self.head != NIL {
            self.frames[self.head].prev = slot;
        } else {
            self.tail = slot;
        }
        self.head = slot;
    }

    fn touch(&mut self, slot: usize) {
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
    }
}

/// A fixed-capacity page cache with true LRU replacement (an intrusive
/// recency list, O(1) per access) and a write-through policy.
///
/// Write-through keeps the underlying [`Disk`] contents authoritative at all
/// times, so experiments can mix cached readers with uncached ones, and the
/// disk's *write* counters stay exact; only read traffic is absorbed.
pub struct BufferPool {
    disk: Arc<Disk>,
    capacity: usize,
    /// Maximum pages in the pinned tier; `0` disables it entirely.
    pinned_capacity: usize,
    // The pool lock is NEVER held across a `self.disk` call (enforced by
    // the guard-across-io lint): `read_page` drops its guard before a
    // miss goes to disk; `write_page`/`append_page` take it only after
    // the disk write returns. The pool and disk mutexes are therefore
    // never nested, and either can be taken while a caller holds an
    // engine-level lock.
    // LOCK-ORDER: pagestore.pool leaf
    inner: Mutex<PoolInner>,
}

impl BufferPool {
    /// Creates a pool of `capacity` frames (must be nonzero) over `disk`,
    /// with no pinned tier.
    pub fn new(disk: Arc<Disk>, capacity: usize) -> Self {
        Self::with_pinned(disk, capacity, 0)
    }

    /// Creates a pool of `capacity` LRU frames plus a pinned tier of up to
    /// `pinned_capacity` pages above it.
    ///
    /// Admission is by heat: a page's second read while the tier has room
    /// pins it permanently (a single read is not evidence of reuse, and the
    /// hottest pages — BSSF slice pages re-read by every query — reach two
    /// first). Pinned pages are served before the LRU list, never evicted,
    /// and kept coherent by the same write-through as the frames.
    pub fn with_pinned(disk: Arc<Disk>, capacity: usize, pinned_capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            disk,
            capacity,
            pinned_capacity,
            inner: Mutex::new(PoolInner {
                frames: Vec::with_capacity(capacity),
                map: HashMap::new(),
                head: NIL,
                tail: NIL,
                pinned: HashMap::new(),
                heat: HashMap::new(),
                stats: CacheStats::default(),
            }),
        }
    }

    /// Maximum pages the pinned tier may hold (`0` = tier disabled).
    pub fn pinned_capacity(&self) -> usize {
        self.pinned_capacity
    }

    /// Pages currently held by the pinned tier.
    pub fn pinned_len(&self) -> usize {
        self.inner.lock().pinned.len()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// The disk underneath the pool.
    pub fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    /// Drops all cached frames and pinned pages (counters are kept).
    pub fn clear(&self) {
        let mut g = self.inner.lock();
        g.frames.clear();
        g.map.clear();
        g.head = NIL;
        g.tail = NIL;
        g.pinned.clear();
        g.heat.clear();
    }

    /// Counts a read of `key` towards pinned admission, pinning `page` on
    /// its second access while the tier has room. Heat stops accumulating
    /// once the tier fills, so the map's size is bounded by the reads made
    /// while it still had room.
    fn note_heat(&self, g: &mut PoolInner, key: (FileId, u32), page: &Page) {
        if self.pinned_capacity == 0 || g.pinned.len() >= self.pinned_capacity {
            return;
        }
        let heat = g.heat.entry(key).or_insert(0);
        *heat += 1;
        if *heat >= 2 {
            g.heat.remove(&key);
            g.pinned.insert(key, page.clone());
        }
    }

    fn install(&self, g: &mut PoolInner, key: (FileId, u32), page: Page) {
        if let Some(pinned) = g.pinned.get_mut(&key) {
            // Keep the pinned copy coherent; a pinned page takes no LRU
            // frame — the tier alone serves it.
            *pinned = page;
            return;
        }
        if let Some(&slot) = g.map.get(&key) {
            g.frames[slot].page = page;
            g.touch(slot);
            return;
        }
        if g.frames.len() < self.capacity {
            let slot = g.frames.len();
            g.frames.push(Frame {
                key,
                page,
                prev: NIL,
                next: NIL,
            });
            g.map.insert(key, slot);
            g.push_front(slot);
            return;
        }
        // Evict the least recently used frame and reuse its slot.
        let slot = g.tail;
        g.unlink(slot);
        let old = g.frames[slot].key;
        g.map.remove(&old);
        g.frames[slot].key = key;
        g.frames[slot].page = page;
        g.map.insert(key, slot);
        g.push_front(slot);
        g.stats.evictions += 1;
    }
}

impl PageIo for BufferPool {
    // HOT-PATH: pagestore.read
    // COST: 1 pages
    fn read_page(&self, id: FileId, n: u32) -> Result<Page> {
        let key = (id, n);
        {
            let mut g = self.inner.lock();
            if let Some(page) = g.pinned.get(&key) {
                let page = page.clone();
                g.stats.pinned_hits += 1;
                return Ok(page);
            }
            if let Some(&slot) = g.map.get(&key) {
                g.touch(slot);
                g.stats.hits += 1;
                let page = g.frames[slot].page.clone();
                self.note_heat(&mut g, key, &page);
                return Ok(page);
            }
            g.stats.misses += 1;
        }
        let page = self.disk.read_page(id, n)?;
        let mut g = self.inner.lock();
        self.note_heat(&mut g, key, &page);
        self.install(&mut g, key, page.clone());
        Ok(page)
    }

    fn write_page(&self, id: FileId, n: u32, page: &Page) -> Result<()> {
        self.disk.write_page(id, n, page)?;
        let mut g = self.inner.lock();
        self.install(&mut g, (id, n), page.clone());
        Ok(())
    }

    // COST: 1 pages
    fn update_page(&self, id: FileId, n: u32, f: &mut dyn FnMut(&mut Page)) -> Result<()> {
        // The pool cannot blind-update the underlying disk without losing
        // its frame coherence; a cached read (free on hit) plus a
        // write-through gives the same result with at most one extra read.
        let mut page = PageIo::read_page(self, id, n)?;
        f(&mut page);
        PageIo::write_page(self, id, n, &page)
    }

    fn append_page(&self, id: FileId, page: &Page) -> Result<u32> {
        let n = self.disk.append_page(id, page)?;
        let mut g = self.inner.lock();
        self.install(&mut g, (id, n), page.clone());
        Ok(n)
    }

    fn page_count(&self, id: FileId) -> Result<u32> {
        self.disk.page_count(id)
    }

    fn create_file(&self, name: &str) -> FileId {
        self.disk.create_file(name)
    }

    fn extend_to(&self, id: FileId, pages: u32) -> Result<()> {
        self.disk.extend_to(id, pages)
    }

    fn snapshot(&self) -> IoSnapshot {
        self.disk.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: usize) -> (Arc<Disk>, BufferPool) {
        let disk = Arc::new(Disk::new());
        let pool = BufferPool::new(Arc::clone(&disk), cap);
        (disk, pool)
    }

    #[test]
    fn cache_stats_sum_componentwise() {
        let a = CacheStats {
            pinned_hits: 1,
            hits: 2,
            misses: 3,
            evictions: 1,
        };
        let b = CacheStats {
            pinned_hits: 6,
            hits: 5,
            misses: 0,
            evictions: 4,
        };
        let s = a + b;
        assert_eq!(
            s,
            CacheStats {
                pinned_hits: 7,
                hits: 7,
                misses: 3,
                evictions: 5
            }
        );
        let mut acc = CacheStats::default();
        acc += a;
        acc += b;
        assert_eq!(acc, s);
        // Pinned hits are memory hits: 14 served / 17 total.
        assert!((s.hit_rate() - 14.0 / 17.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_reads_hit_pool() {
        let (disk, pool) = pool(4);
        let f = disk.create_file("t");
        disk.extend_to(f, 1).unwrap();
        disk.reset_stats();
        for _ in 0..10 {
            let _ = pool.read_page(f, 0).unwrap();
        }
        // Only the first read reached the disk.
        assert_eq!(disk.snapshot().reads, 1);
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 9);
        assert!(s.hit_rate() > 0.89);
    }

    #[test]
    fn capacity_bounds_resident_set() {
        let (disk, pool) = pool(2);
        let f = disk.create_file("t");
        disk.extend_to(f, 4).unwrap();
        disk.reset_stats();
        // Cyclic access over 4 pages with capacity 2: mostly misses.
        for round in 0..3 {
            for n in 0..4 {
                let _ = pool.read_page(f, n).unwrap();
                let _ = round;
            }
        }
        assert!(pool.stats().evictions > 0);
        assert!(disk.snapshot().reads > 4);
    }

    #[test]
    fn write_through_updates_disk_and_pool() {
        let (disk, pool) = pool(2);
        let f = disk.create_file("t");
        disk.extend_to(f, 1).unwrap();
        let mut p = Page::zeroed();
        p.write_u8(0, 42);
        pool.write_page(f, 0, &p).unwrap();
        // Direct (uncached) disk read sees the new contents.
        assert_eq!(disk.read_page(f, 0).unwrap().read_u8(0), 42);
        // Cached read hits.
        disk.reset_stats();
        assert_eq!(pool.read_page(f, 0).unwrap().read_u8(0), 42);
        assert_eq!(disk.snapshot().reads, 0);
    }

    #[test]
    fn append_populates_cache() {
        let (disk, pool) = pool(2);
        let f = pool.create_file("t");
        let n = pool.append_page(f, &Page::zeroed()).unwrap();
        disk.reset_stats();
        let _ = pool.read_page(f, n).unwrap();
        assert_eq!(disk.snapshot().reads, 0);
    }

    #[test]
    fn clear_forgets_frames() {
        let (disk, pool) = pool(2);
        let f = disk.create_file("t");
        disk.extend_to(f, 1).unwrap();
        let _ = pool.read_page(f, 0).unwrap();
        pool.clear();
        disk.reset_stats();
        let _ = pool.read_page(f, 0).unwrap();
        assert_eq!(disk.snapshot().reads, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // A recency-respecting victim choice: after re-touching page 0, the
        // coldest page (1) is the one a new page displaces.
        let (disk, pool) = pool(3);
        let f = disk.create_file("t");
        disk.extend_to(f, 5).unwrap();
        for n in 0..3 {
            let _ = pool.read_page(f, n).unwrap();
        }
        let _ = pool.read_page(f, 0).unwrap(); // 0 becomes MRU
        let _ = pool.read_page(f, 3).unwrap(); // must evict 1, not 0
        disk.reset_stats();
        for n in [0, 2, 3] {
            let _ = pool.read_page(f, n).unwrap();
        }
        assert_eq!(disk.snapshot().reads, 0, "0/2/3 are resident");
        let _ = pool.read_page(f, 1).unwrap();
        assert_eq!(disk.snapshot().reads, 1, "1 was the LRU victim");
    }

    #[test]
    fn eviction_counter_tracks_displacements() {
        let (disk, pool) = pool(2);
        let f = disk.create_file("t");
        disk.extend_to(f, 3).unwrap();
        for n in 0..3 {
            let _ = pool.read_page(f, n).unwrap();
        }
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let disk = Arc::new(Disk::new());
        let _ = BufferPool::new(disk, 0);
    }

    fn pinned_pool(cap: usize, pinned: usize) -> (Arc<Disk>, BufferPool) {
        let disk = Arc::new(Disk::new());
        let pool = BufferPool::with_pinned(Arc::clone(&disk), cap, pinned);
        (disk, pool)
    }

    #[test]
    fn second_access_pins_and_pinned_pages_never_evict() {
        let (disk, pool) = pinned_pool(2, 1);
        let f = disk.create_file("t");
        disk.extend_to(f, 4).unwrap();
        // Two reads of page 0: miss (heat 1), LRU hit (heat 2 → pinned).
        let _ = pool.read_page(f, 0).unwrap();
        let _ = pool.read_page(f, 0).unwrap();
        assert_eq!(pool.pinned_len(), 1);
        // Thrash the tiny LRU far past page 0's recency.
        for _ in 0..3 {
            for n in 1..4 {
                let _ = pool.read_page(f, n).unwrap();
            }
        }
        disk.reset_stats();
        let _ = pool.read_page(f, 0).unwrap();
        assert_eq!(disk.snapshot().reads, 0, "pinned page survived the thrash");
        let s = pool.stats();
        assert_eq!(s.pinned_hits, 1);
    }

    #[test]
    fn pinned_tier_respects_capacity() {
        let (disk, pool) = pinned_pool(2, 2);
        let f = disk.create_file("t");
        disk.extend_to(f, 5).unwrap();
        // Heat up pages 0..4 twice each; only the first two to reach heat 2
        // fit the tier.
        for n in 0..5 {
            let _ = pool.read_page(f, n).unwrap();
            let _ = pool.read_page(f, n).unwrap();
        }
        assert_eq!(pool.pinned_len(), 2);
        assert_eq!(pool.pinned_capacity(), 2);
    }

    #[test]
    fn stats_split_pinned_pool_disk() {
        let (disk, pool) = pinned_pool(4, 1);
        let f = disk.create_file("t");
        disk.extend_to(f, 2).unwrap();
        let _ = pool.read_page(f, 0).unwrap(); // miss
        let _ = pool.read_page(f, 0).unwrap(); // pool hit, pins
        let _ = pool.read_page(f, 0).unwrap(); // pinned hit
        let _ = pool.read_page(f, 1).unwrap(); // miss
        let s = pool.stats();
        assert_eq!((s.pinned_hits, s.hits, s.misses), (1, 1, 2));
    }

    #[test]
    fn writes_keep_pinned_copy_coherent() {
        let (disk, pool) = pinned_pool(2, 1);
        let f = disk.create_file("t");
        disk.extend_to(f, 1).unwrap();
        let _ = pool.read_page(f, 0).unwrap();
        let _ = pool.read_page(f, 0).unwrap();
        assert_eq!(pool.pinned_len(), 1);
        let mut p = Page::zeroed();
        p.write_u8(0, 42);
        pool.write_page(f, 0, &p).unwrap();
        // The pinned tier serves the written contents, not a stale copy.
        assert_eq!(pool.read_page(f, 0).unwrap().read_u8(0), 42);
        pool.update_page(f, 0, &mut |page| page.write_u8(0, 43))
            .unwrap();
        assert_eq!(pool.read_page(f, 0).unwrap().read_u8(0), 43);
        // All of those post-pin reads came from RAM.
        assert_eq!(disk.snapshot().reads, 1);
    }

    #[test]
    fn clear_drops_pinned_pages() {
        let (disk, pool) = pinned_pool(2, 1);
        let f = disk.create_file("t");
        disk.extend_to(f, 1).unwrap();
        let _ = pool.read_page(f, 0).unwrap();
        let _ = pool.read_page(f, 0).unwrap();
        assert_eq!(pool.pinned_len(), 1);
        pool.clear();
        assert_eq!(pool.pinned_len(), 0);
        disk.reset_stats();
        let _ = pool.read_page(f, 0).unwrap();
        assert_eq!(disk.snapshot().reads, 1);
    }

    #[test]
    fn plain_pool_never_pins() {
        let (disk, pool) = pool(2);
        let f = disk.create_file("t");
        disk.extend_to(f, 1).unwrap();
        for _ in 0..5 {
            let _ = pool.read_page(f, 0).unwrap();
        }
        assert_eq!(pool.pinned_len(), 0);
        assert_eq!(pool.stats().pinned_hits, 0);
    }
}
