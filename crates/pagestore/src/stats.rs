//! I/O accounting: the observable the whole reproduction is built around.
//!
//! The paper's retrieval / storage / update costs are all expressed in
//! page accesses. Every [`Disk`](crate::Disk) operation bumps counters here,
//! and experiments take [`IoSnapshot`]s around an operation to obtain its
//! exact cost as an [`IoDelta`].

/// Whether a page access hit the page following the previous access to the
/// same file (sequential) or any other page (random).
///
/// The paper's model treats both identically (cost = 1 page), but the
/// distinction lets ablation benchmarks reason about scan-friendly layouts
/// such as SSF versus the scattered accesses of NIX.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Page `n + 1` immediately after page `n` of the same file.
    Sequential,
    /// Anything else, including the first access to a file.
    Random,
}

/// Cumulative counters for one file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileStats {
    /// Pages read.
    pub reads: u64,
    /// Pages written (including appends).
    pub writes: u64,
    /// Reads that were sequential continuations.
    pub seq_reads: u64,
    /// Writes that were sequential continuations.
    pub seq_writes: u64,
}

impl FileStats {
    /// Total page accesses (reads + writes) — the paper's cost unit.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

/// A point-in-time copy of the disk-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Total pages read across all files.
    pub reads: u64,
    /// Total pages written across all files.
    pub writes: u64,
}

impl IoSnapshot {
    /// Counters accumulated since `earlier`.
    ///
    /// Panics in debug builds if `earlier` is not actually earlier.
    pub fn since(&self, earlier: IoSnapshot) -> IoDelta {
        debug_assert!(self.reads >= earlier.reads && self.writes >= earlier.writes);
        IoDelta {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
        }
    }

    /// Total page accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

/// The I/O cost of a bracketed operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoDelta {
    /// Pages read during the operation.
    pub reads: u64,
    /// Pages written during the operation.
    pub writes: u64,
}

impl IoDelta {
    /// Total page accesses — directly comparable to the paper's `RC`,
    /// `UC_I`, `UC_D` figures.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

impl std::ops::Add for IoDelta {
    type Output = IoDelta;
    fn add(self, rhs: IoDelta) -> IoDelta {
        IoDelta {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
        }
    }
}

impl std::ops::AddAssign for IoDelta {
    fn add_assign(&mut self, rhs: IoDelta) {
        self.reads += rhs.reads;
        self.writes += rhs.writes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta() {
        let a = IoSnapshot {
            reads: 10,
            writes: 4,
        };
        let b = IoSnapshot {
            reads: 25,
            writes: 9,
        };
        let d = b.since(a);
        assert_eq!(
            d,
            IoDelta {
                reads: 15,
                writes: 5
            }
        );
        assert_eq!(d.accesses(), 20);
    }

    #[test]
    fn delta_addition() {
        let mut d = IoDelta {
            reads: 1,
            writes: 2,
        };
        d += IoDelta {
            reads: 3,
            writes: 4,
        };
        assert_eq!(
            d,
            IoDelta {
                reads: 4,
                writes: 6
            }
        );
        let e = d + IoDelta {
            reads: 1,
            writes: 1,
        };
        assert_eq!(e.accesses(), 12);
    }

    #[test]
    fn file_stats_accesses() {
        let fs = FileStats {
            reads: 7,
            writes: 3,
            seq_reads: 2,
            seq_writes: 1,
        };
        assert_eq!(fs.accesses(), 10);
    }
}
