//! Saving and loading whole disk images.
//!
//! Examples build a database once and reload it on later runs. The format is
//! a simple length-prefixed binary layout:
//!
//! ```text
//! magic  "SSIMG1\n\0"              8 bytes
//! nfiles u32
//! per file:
//!   slot    u32     (FileId index; gaps mark deleted files)
//!   namelen u32, name bytes
//!   npages  u32, npages * PAGE_SIZE bytes
//! ```

use std::io::{Read, Write};
use std::path::Path;

use crate::disk::Disk;
use crate::error::{Error, Result};
use crate::page::{Page, PAGE_SIZE};

const MAGIC: &[u8; 8] = b"SSIMG1\n\0";

impl Disk {
    /// Serializes the disk (file names and page contents; counters are not
    /// persisted) to `path`.
    pub fn save_to(&self, path: &Path) -> Result<()> {
        let files = self.dump_files();
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        out.write_all(MAGIC)?;
        out.write_all(&(files.len() as u32).to_le_bytes())?;
        for (slot, name, pages) in files {
            out.write_all(&slot.to_le_bytes())?;
            out.write_all(&(name.len() as u32).to_le_bytes())?;
            out.write_all(name.as_bytes())?;
            out.write_all(&(pages.len() as u32).to_le_bytes())?;
            for page in &pages {
                out.write_all(page.as_bytes())?;
            }
        }
        out.flush()?;
        Ok(())
    }

    /// Loads a disk image previously written by [`Disk::save_to`]. All
    /// counters start from zero.
    pub fn load_from(path: &Path) -> Result<Disk> {
        let mut input = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(Error::CorruptImage("bad magic".into()));
        }
        let nfiles = read_u32(&mut input)?;
        let mut files = Vec::with_capacity(nfiles as usize);
        for _ in 0..nfiles {
            let slot = read_u32(&mut input)?;
            let namelen = read_u32(&mut input)? as usize;
            if namelen > 1 << 20 {
                return Err(Error::CorruptImage("file name too long".into()));
            }
            let mut name = vec![0u8; namelen];
            input.read_exact(&mut name)?;
            let name = String::from_utf8(name)
                .map_err(|_| Error::CorruptImage("file name not utf-8".into()))?;
            let npages = read_u32(&mut input)?;
            let mut pages = Vec::with_capacity(npages as usize);
            for _ in 0..npages {
                let mut buf = [0u8; PAGE_SIZE];
                input.read_exact(&mut buf)?;
                pages.push(Page::from_bytes(buf));
            }
            files.push((slot, name, pages));
        }
        // Slots must be strictly increasing for restore_files to rebuild the
        // id space faithfully.
        for w in files.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(Error::CorruptImage("file slots out of order".into()));
            }
        }
        let disk = Disk::new();
        disk.restore_files(files);
        Ok(disk)
    }
}

fn read_u32(r: &mut impl Read) -> Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_files_and_contents() {
        let dir = std::env::temp_dir().join(format!("setsig-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("image.bin");

        let disk = Disk::new();
        let a = disk.create_file("alpha");
        let b = disk.create_file("beta");
        let mut p = Page::zeroed();
        p.write_u64(0, 11);
        disk.append_page(a, &p).unwrap();
        p.write_u64(0, 22);
        disk.append_page(b, &p).unwrap();
        p.write_u64(0, 33);
        disk.append_page(b, &p).unwrap();
        // A deleted file leaves a slot gap that must survive the roundtrip.
        let c = disk.create_file("gamma");
        disk.delete_file(c).unwrap();
        let d = disk.create_file("delta");
        disk.append_page(d, &Page::zeroed()).unwrap();

        disk.save_to(&path).unwrap();
        let loaded = Disk::load_from(&path).unwrap();

        assert_eq!(loaded.read_page(a, 0).unwrap().read_u64(0), 11);
        assert_eq!(loaded.read_page(b, 1).unwrap().read_u64(0), 33);
        assert!(loaded.read_page(c, 0).is_err());
        assert_eq!(loaded.page_count(d).unwrap(), 1);
        let names: Vec<_> = loaded.list_files().into_iter().map(|i| i.name).collect();
        assert_eq!(names, vec!["alpha", "beta", "delta"]);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let dir = std::env::temp_dir().join(format!("setsig-persist-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.bin");
        std::fs::write(&path, b"NOTANIMAGE").unwrap();
        assert!(matches!(
            Disk::load_from(&path),
            Err(Error::CorruptImage(_)) | Err(Error::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_image_is_rejected() {
        let dir = std::env::temp_dir().join(format!("setsig-persist-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trunc.bin");

        let disk = Disk::new();
        let f = disk.create_file("t");
        disk.append_page(f, &Page::zeroed()).unwrap();
        disk.save_to(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(Disk::load_from(&path).is_err());

        std::fs::remove_dir_all(&dir).ok();
    }
}
