//! Error type shared by the storage substrate.

use crate::disk::FileId;

/// Errors raised by the paged storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The file handle does not name a live file (never created, or deleted).
    FileNotFound(FileId),
    /// A page index was at or beyond the end of the file.
    PageOutOfBounds {
        /// File being accessed.
        file: FileId,
        /// Requested page number.
        page: u32,
        /// Current length of the file in pages.
        len: u32,
    },
    /// A persisted disk image could not be decoded.
    CorruptImage(String),
    /// An underlying I/O error while saving or loading a disk image.
    Io(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::FileNotFound(id) => write!(f, "file {id:?} not found"),
            Error::PageOutOfBounds { file, page, len } => {
                write!(
                    f,
                    "page {page} out of bounds for file {file:?} of {len} pages"
                )
            }
            Error::CorruptImage(msg) => write!(f, "corrupt disk image: {msg}"),
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

/// Convenience alias used throughout the storage crates.
pub type Result<T> = std::result::Result<T, Error>;
