//! The simulated disk: named paged files plus access accounting.

use parking_lot::Mutex;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::page::Page;
use crate::stats::{FileStats, IoSnapshot};

/// Identifies a file on a [`Disk`]. Handles are never reused, so a stale
/// handle to a deleted file fails cleanly instead of aliasing a new file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub(crate) u32);

impl FileId {
    /// The raw index backing this handle (stable for the disk's lifetime).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Reconstructs a handle from a raw index — for catalogs that persist
    /// file bindings across a [`Disk::save_to`]/[`Disk::load_from`] cycle
    /// (slots are preserved by the image format).
    pub fn from_raw(raw: u32) -> Self {
        FileId(raw)
    }
}

/// Metadata about one file, as returned by [`Disk::file_info`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileInfo {
    /// Handle of the file.
    pub id: FileId,
    /// Name given at creation.
    pub name: String,
    /// Length in pages.
    pub pages: u32,
    /// Cumulative access counters.
    pub stats: FileStats,
}

struct FileData {
    name: String,
    pages: Vec<Page>,
    stats: FileStats,
    /// Page number of the most recent access, for sequential detection.
    last_access: Option<u32>,
}

struct DiskInner {
    /// `None` marks a deleted file; slots are never reused.
    files: Vec<Option<FileData>>,
    total: IoSnapshot,
    /// Fault injection: `Some(n)` fails every page access after `n` more
    /// successful ones.
    fail_after: Option<u64>,
}

/// An in-memory simulated disk.
///
/// A `Disk` holds a set of named paged files and counts every page read and
/// write, globally and per file. It is the single shared resource of the
/// reproduction: signature files, bit slices, OID files, object stores and
/// B-tree indexes all allocate their files here, so an experiment can bracket
/// any operation with [`Disk::snapshot`] and read off its exact page-access
/// cost.
///
/// `Disk` is internally synchronized; share it as `Arc<Disk>`.
pub struct Disk {
    // This is the LEAF lock of the whole system: no method calls out of
    // the crate (or into BufferPool) while holding it, so it can be taken
    // from under any other lock without deadlock risk.
    // LOCK-ORDER: pagestore.disk leaf
    inner: Mutex<DiskInner>,
}

impl Disk {
    /// Creates an empty disk.
    pub fn new() -> Self {
        Disk {
            inner: Mutex::new(DiskInner {
                files: Vec::new(),
                total: IoSnapshot::default(),
                fail_after: None,
            }),
        }
    }

    /// Creates a new empty file and returns its handle.
    pub fn create_file(&self, name: &str) -> FileId {
        let mut g = self.inner.lock();
        let id = FileId(g.files.len() as u32);
        g.files.push(Some(FileData {
            name: name.to_owned(),
            pages: Vec::new(),
            stats: FileStats::default(),
            last_access: None,
        }));
        id
    }

    /// Deletes a file, freeing its pages. Subsequent access through the
    /// handle yields [`Error::FileNotFound`].
    pub fn delete_file(&self, id: FileId) -> Result<()> {
        let mut g = self.inner.lock();
        let slot = g
            .files
            .get_mut(id.0 as usize)
            .ok_or(Error::FileNotFound(id))?;
        if slot.is_none() {
            return Err(Error::FileNotFound(id));
        }
        *slot = None;
        Ok(())
    }

    fn with_file<R>(
        &self,
        id: FileId,
        f: impl FnOnce(&mut FileData, &mut IoSnapshot) -> Result<R>,
    ) -> Result<R> {
        let mut g = self.inner.lock();
        let inner = &mut *g;
        if let Some(remaining) = &mut inner.fail_after {
            if *remaining == 0 {
                return Err(Error::Io("injected fault".into()));
            }
            *remaining -= 1;
        }
        let data = inner
            .files
            .get_mut(id.0 as usize)
            .and_then(|s| s.as_mut())
            .ok_or(Error::FileNotFound(id))?;
        f(data, &mut inner.total)
    }

    /// Fault injection for failure testing: after `ops` more page
    /// accesses, every subsequent access fails with an I/O error until
    /// [`Disk::clear_fault`] is called. Metadata operations (page counts,
    /// file listing) are unaffected.
    pub fn inject_fault_after(&self, ops: u64) {
        self.inner.lock().fail_after = Some(ops);
    }

    /// Removes an injected fault.
    pub fn clear_fault(&self) {
        self.inner.lock().fail_after = None;
    }

    /// Reads page `n` of `id`, charging one page read.
    pub fn read_page(&self, id: FileId, n: u32) -> Result<Page> {
        self.with_page(id, n, |p| p.clone())
    }

    /// Runs `f` against page `n` of `id` without copying it out, charging
    /// one page read.
    pub fn with_page<R>(&self, id: FileId, n: u32, f: impl FnOnce(&Page) -> R) -> Result<R> {
        self.with_file(id, |data, total| {
            let len = data.pages.len() as u32;
            let page = data.pages.get(n as usize).ok_or(Error::PageOutOfBounds {
                file: id,
                page: n,
                len,
            })?;
            let seq = data.last_access == Some(n.wrapping_sub(1)) && n > 0;
            data.stats.reads += 1;
            if seq {
                data.stats.seq_reads += 1;
            }
            data.last_access = Some(n);
            total.reads += 1;
            Ok(f(page))
        })
    }

    /// Overwrites page `n` of `id`, charging one page write.
    pub fn write_page(&self, id: FileId, n: u32, page: &Page) -> Result<()> {
        self.update_page(id, n, |p| *p = page.clone())
    }

    /// Mutates page `n` of `id` in place, charging one page write.
    ///
    /// The paper's read-modify-write sequences (e.g. setting a BSSF slice
    /// bit) are expressed as `with_page` + `update_page`, charging one read
    /// and one write, or as a single `update_page` when the old contents are
    /// irrelevant.
    pub fn update_page(&self, id: FileId, n: u32, f: impl FnOnce(&mut Page)) -> Result<()> {
        self.with_file(id, |data, total| {
            let len = data.pages.len() as u32;
            let page = data
                .pages
                .get_mut(n as usize)
                .ok_or(Error::PageOutOfBounds {
                    file: id,
                    page: n,
                    len,
                })?;
            let seq = data.last_access == Some(n.wrapping_sub(1)) && n > 0;
            data.stats.writes += 1;
            if seq {
                data.stats.seq_writes += 1;
            }
            data.last_access = Some(n);
            total.writes += 1;
            f(page);
            Ok(())
        })
    }

    /// Appends a page to `id`, charging one page write; returns the new
    /// page's number.
    pub fn append_page(&self, id: FileId, page: &Page) -> Result<u32> {
        self.with_file(id, |data, total| {
            let n = data.pages.len() as u32;
            data.pages.push(page.clone());
            let seq = data.last_access == Some(n.wrapping_sub(1)) && n > 0;
            data.stats.writes += 1;
            if seq {
                data.stats.seq_writes += 1;
            }
            data.last_access = Some(n);
            total.writes += 1;
            Ok(n)
        })
    }

    /// Extends `id` with zeroed pages until it is at least `pages` long,
    /// charging one write per page actually added.
    pub fn extend_to(&self, id: FileId, pages: u32) -> Result<()> {
        self.with_file(id, |data, total| {
            while (data.pages.len() as u32) < pages {
                data.pages.push(Page::zeroed());
                data.stats.writes += 1;
                total.writes += 1;
            }
            Ok(())
        })
    }

    /// Length of `id` in pages. Free: catalog metadata, not a page access.
    pub fn page_count(&self, id: FileId) -> Result<u32> {
        self.with_file(id, |data, _| Ok(data.pages.len() as u32))
    }

    /// Disk-wide cumulative counters.
    pub fn snapshot(&self) -> IoSnapshot {
        self.inner.lock().total
    }

    /// Cumulative counters for one file.
    pub fn file_stats(&self, id: FileId) -> Result<FileStats> {
        self.with_file(id, |data, _| Ok(data.stats))
    }

    /// Metadata for one file.
    pub fn file_info(&self, id: FileId) -> Result<FileInfo> {
        self.with_file(id, |data, _| {
            Ok(FileInfo {
                id,
                name: data.name.clone(),
                pages: data.pages.len() as u32,
                stats: data.stats,
            })
        })
    }

    /// Metadata for every live file, in creation order.
    pub fn list_files(&self) -> Vec<FileInfo> {
        let g = self.inner.lock();
        g.files
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                slot.as_ref().map(|data| FileInfo {
                    id: FileId(i as u32),
                    name: data.name.clone(),
                    pages: data.pages.len() as u32,
                    stats: data.stats,
                })
            })
            .collect()
    }

    /// Resets all counters (global and per-file) to zero. File contents are
    /// untouched. Used to separate build cost from query cost in experiments.
    pub fn reset_stats(&self) {
        let mut g = self.inner.lock();
        g.total = IoSnapshot::default();
        for slot in g.files.iter_mut().flatten() {
            slot.stats = FileStats::default();
            slot.last_access = None;
        }
    }

    /// Total pages currently allocated across all live files — the
    /// measured counterpart of the paper's storage cost `SC`.
    pub fn total_pages(&self) -> u64 {
        let g = self.inner.lock();
        g.files.iter().flatten().map(|d| d.pages.len() as u64).sum()
    }

    pub(crate) fn dump_files(&self) -> Vec<(u32, String, Vec<Page>)> {
        let g = self.inner.lock();
        g.files
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                slot.as_ref()
                    .map(|d| (i as u32, d.name.clone(), d.pages.clone()))
            })
            .collect()
    }

    pub(crate) fn restore_files(&self, files: Vec<(u32, String, Vec<Page>)>) {
        let mut g = self.inner.lock();
        g.files.clear();
        g.total = IoSnapshot::default();
        for (idx, name, pages) in files {
            while g.files.len() < idx as usize {
                g.files.push(None);
            }
            g.files.push(Some(FileData {
                name,
                pages,
                stats: FileStats::default(),
                last_access: None,
            }));
        }
    }
}

impl Default for Disk {
    fn default() -> Self {
        Disk::new()
    }
}

impl std::fmt::Debug for Disk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock();
        let live = g.files.iter().flatten().count();
        write!(
            f,
            "Disk {{ files: {live}, reads: {}, writes: {} }}",
            g.total.reads, g.total.writes
        )
    }
}

/// Object-safe page I/O, implemented by [`Disk`] (uncached, the paper's
/// model) and [`BufferPool`](crate::BufferPool) (cached, for ablations).
///
/// Access facilities hold an `Arc<dyn PageIo>` so experiments can swap the
/// caching policy without touching the data structures.
pub trait PageIo: Send + Sync {
    /// Reads page `n` of `id`.
    fn read_page(&self, id: FileId, n: u32) -> Result<Page>;
    /// Overwrites page `n` of `id`.
    fn write_page(&self, id: FileId, n: u32, page: &Page) -> Result<()>;
    /// Mutates page `n` of `id` in place.
    ///
    /// On a raw [`Disk`] this is a *blind write*: one page write, no read —
    /// the cost the paper assigns to appending a record into a known tail
    /// page. Cached backends may charge a read on a cache miss.
    fn update_page(&self, id: FileId, n: u32, f: &mut dyn FnMut(&mut Page)) -> Result<()>;
    /// Appends a page to `id`, returning its page number.
    fn append_page(&self, id: FileId, page: &Page) -> Result<u32>;
    /// Length of `id` in pages.
    fn page_count(&self, id: FileId) -> Result<u32>;
    /// Creates a new file.
    fn create_file(&self, name: &str) -> FileId;
    /// Extends `id` with zeroed pages to at least `pages` pages.
    fn extend_to(&self, id: FileId, pages: u32) -> Result<()>;
    /// Disk-wide cumulative counters (post-cache where applicable).
    fn snapshot(&self) -> IoSnapshot;
}

impl PageIo for Disk {
    // COST: 1 pages
    fn read_page(&self, id: FileId, n: u32) -> Result<Page> {
        Disk::read_page(self, id, n)
    }
    fn write_page(&self, id: FileId, n: u32, page: &Page) -> Result<()> {
        Disk::write_page(self, id, n, page)
    }
    fn update_page(&self, id: FileId, n: u32, f: &mut dyn FnMut(&mut Page)) -> Result<()> {
        Disk::update_page(self, id, n, |p| f(p))
    }
    fn append_page(&self, id: FileId, page: &Page) -> Result<u32> {
        Disk::append_page(self, id, page)
    }
    fn page_count(&self, id: FileId) -> Result<u32> {
        Disk::page_count(self, id)
    }
    fn create_file(&self, name: &str) -> FileId {
        Disk::create_file(self, name)
    }
    fn extend_to(&self, id: FileId, pages: u32) -> Result<()> {
        Disk::extend_to(self, id, pages)
    }
    fn snapshot(&self) -> IoSnapshot {
        Disk::snapshot(self)
    }
}

impl PageIo for Arc<Disk> {
    // COST: 1 pages
    fn read_page(&self, id: FileId, n: u32) -> Result<Page> {
        Disk::read_page(self, id, n)
    }
    fn write_page(&self, id: FileId, n: u32, page: &Page) -> Result<()> {
        Disk::write_page(self, id, n, page)
    }
    fn update_page(&self, id: FileId, n: u32, f: &mut dyn FnMut(&mut Page)) -> Result<()> {
        Disk::update_page(self, id, n, |p| f(p))
    }
    fn append_page(&self, id: FileId, page: &Page) -> Result<u32> {
        Disk::append_page(self, id, page)
    }
    fn page_count(&self, id: FileId) -> Result<u32> {
        Disk::page_count(self, id)
    }
    fn create_file(&self, name: &str) -> FileId {
        Disk::create_file(self, name)
    }
    fn extend_to(&self, id: FileId, pages: u32) -> Result<()> {
        Disk::extend_to(self, id, pages)
    }
    fn snapshot(&self) -> IoSnapshot {
        Disk::snapshot(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_roundtrip() {
        let disk = Disk::new();
        let f = disk.create_file("t");
        let mut p = Page::zeroed();
        p.write_u32(0, 42);
        let n = disk.append_page(f, &p).unwrap();
        assert_eq!(n, 0);
        assert_eq!(disk.read_page(f, 0).unwrap().read_u32(0), 42);
        assert_eq!(disk.page_count(f).unwrap(), 1);
    }

    #[test]
    fn counters_track_every_access() {
        let disk = Disk::new();
        let f = disk.create_file("t");
        disk.append_page(f, &Page::zeroed()).unwrap(); // 1 write
        disk.append_page(f, &Page::zeroed()).unwrap(); // 1 write
        let _ = disk.read_page(f, 0); // 1 read
        let _ = disk.read_page(f, 1); // 1 read
        disk.update_page(f, 0, |p| p.write_u8(0, 1)).unwrap(); // 1 write
        let s = disk.snapshot();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 3);
        let fs = disk.file_stats(f).unwrap();
        assert_eq!(fs.reads, 2);
        assert_eq!(fs.writes, 3);
    }

    #[test]
    fn sequential_detection() {
        let disk = Disk::new();
        let f = disk.create_file("t");
        for _ in 0..4 {
            disk.append_page(f, &Page::zeroed()).unwrap();
        }
        // Appends 1..3 are sequential continuations of 0..2.
        assert_eq!(disk.file_stats(f).unwrap().seq_writes, 3);
        let _ = disk.read_page(f, 0);
        let _ = disk.read_page(f, 1); // seq
        let _ = disk.read_page(f, 2); // seq
        let _ = disk.read_page(f, 0); // random
        let _ = disk.read_page(f, 3); // random
        assert_eq!(disk.file_stats(f).unwrap().seq_reads, 2);
    }

    #[test]
    fn out_of_bounds_read() {
        let disk = Disk::new();
        let f = disk.create_file("t");
        assert_eq!(
            disk.read_page(f, 0),
            Err(Error::PageOutOfBounds {
                file: f,
                page: 0,
                len: 0
            })
        );
    }

    #[test]
    fn deleted_file_rejects_access() {
        let disk = Disk::new();
        let f = disk.create_file("t");
        disk.append_page(f, &Page::zeroed()).unwrap();
        disk.delete_file(f).unwrap();
        assert_eq!(disk.read_page(f, 0), Err(Error::FileNotFound(f)));
        assert_eq!(disk.delete_file(f), Err(Error::FileNotFound(f)));
    }

    #[test]
    fn file_ids_are_not_reused() {
        let disk = Disk::new();
        let a = disk.create_file("a");
        disk.delete_file(a).unwrap();
        let b = disk.create_file("b");
        assert_ne!(a, b);
        assert!(disk.read_page(a, 0).is_err());
        assert_eq!(disk.file_info(b).unwrap().name, "b");
    }

    #[test]
    fn extend_to_charges_per_added_page() {
        let disk = Disk::new();
        let f = disk.create_file("t");
        disk.extend_to(f, 5).unwrap();
        assert_eq!(disk.page_count(f).unwrap(), 5);
        assert_eq!(disk.snapshot().writes, 5);
        // Already long enough: no-op, no charge.
        disk.extend_to(f, 3).unwrap();
        assert_eq!(disk.snapshot().writes, 5);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let disk = Disk::new();
        let f = disk.create_file("t");
        let mut p = Page::zeroed();
        p.write_u8(0, 7);
        disk.append_page(f, &p).unwrap();
        disk.reset_stats();
        assert_eq!(disk.snapshot(), IoSnapshot::default());
        assert_eq!(disk.read_page(f, 0).unwrap().read_u8(0), 7);
    }

    #[test]
    fn total_pages_sums_live_files() {
        let disk = Disk::new();
        let a = disk.create_file("a");
        let b = disk.create_file("b");
        disk.extend_to(a, 3).unwrap();
        disk.extend_to(b, 4).unwrap();
        assert_eq!(disk.total_pages(), 7);
        disk.delete_file(a).unwrap();
        assert_eq!(disk.total_pages(), 4);
    }

    #[test]
    fn list_files_in_creation_order() {
        let disk = Disk::new();
        let _a = disk.create_file("first");
        let _b = disk.create_file("second");
        let names: Vec<_> = disk.list_files().into_iter().map(|i| i.name).collect();
        assert_eq!(names, vec!["first", "second"]);
    }

    #[test]
    fn with_page_avoids_copy_and_charges_once() {
        let disk = Disk::new();
        let f = disk.create_file("t");
        let mut p = Page::zeroed();
        p.write_u64(8, 99);
        disk.append_page(f, &p).unwrap();
        let before = disk.snapshot();
        let v = disk.with_page(f, 0, |p| p.read_u64(8)).unwrap();
        assert_eq!(v, 99);
        assert_eq!(disk.snapshot().since(before).reads, 1);
    }

    #[test]
    fn shared_across_threads() {
        let disk = Arc::new(Disk::new());
        let f = disk.create_file("t");
        disk.extend_to(f, 1).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let d = Arc::clone(&disk);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let _ = d.read_page(f, 0).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(disk.snapshot().reads, 400);
    }
}
