//! A convenience handle binding a [`FileId`] to the [`PageIo`] it lives on.

use std::sync::Arc;

use crate::disk::{FileId, PageIo};
use crate::error::Result;
use crate::page::Page;

/// A paged file: a [`FileId`] paired with the [`PageIo`] backing it.
///
/// All storage structures in the workspace (signature files, bit slices, OID
/// files, object stores, B-trees) are built on `PagedFile`s, so the same code
/// runs against the raw accounting [`Disk`](crate::Disk) and against a
/// [`BufferPool`](crate::BufferPool).
#[derive(Clone)]
pub struct PagedFile {
    io: Arc<dyn PageIo>,
    id: FileId,
}

impl PagedFile {
    /// Creates a new file named `name` on `io`.
    pub fn create(io: Arc<dyn PageIo>, name: &str) -> Self {
        let id = io.create_file(name);
        PagedFile { io, id }
    }

    /// Wraps an existing file.
    pub fn open(io: Arc<dyn PageIo>, id: FileId) -> Self {
        PagedFile { io, id }
    }

    /// The underlying file handle.
    pub fn id(&self) -> FileId {
        self.id
    }

    /// The backing I/O layer.
    pub fn io(&self) -> &Arc<dyn PageIo> {
        &self.io
    }

    /// Reads page `n`.
    // COST: 1 pages
    pub fn read(&self, n: u32) -> Result<Page> {
        self.io.read_page(self.id, n)
    }

    /// Overwrites page `n`.
    pub fn write(&self, n: u32, page: &Page) -> Result<()> {
        self.io.write_page(self.id, n, page)
    }

    /// Reads page `n`, applies `f`, writes it back. Charges one read and one
    /// write — the cost the paper assigns to an in-place page update.
    // COST: 1 pages
    pub fn modify(&self, n: u32, f: impl FnOnce(&mut Page)) -> Result<()> {
        let mut page = self.read(n)?;
        f(&mut page);
        self.write(n, &page)
    }

    /// Blind in-place update of page `n`: one page write, no read, on a raw
    /// [`Disk`](crate::Disk) backend. Use when the new contents do not
    /// depend on data the caller hasn't already got (e.g. appending a
    /// record at a known offset of the tail page).
    pub fn update(&self, n: u32, mut f: impl FnMut(&mut Page)) -> Result<()> {
        self.io.update_page(self.id, n, &mut f)
    }

    /// Appends `page`, returning its page number.
    pub fn append(&self, page: &Page) -> Result<u32> {
        self.io.append_page(self.id, page)
    }

    /// Length in pages.
    pub fn len(&self) -> Result<u32> {
        self.io.page_count(self.id)
    }

    /// True if the file has no pages.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Extends with zeroed pages to at least `pages` pages.
    pub fn extend_to(&self, pages: u32) -> Result<()> {
        self.io.extend_to(self.id, pages)
    }

    /// Writes `bytes` as a length-prefixed blob starting at page 0,
    /// overwriting previous contents. Used for facility metadata
    /// (catalog checkpoints); costs `⌈(4 + len)/P⌉` page writes.
    pub fn write_blob(&self, bytes: &[u8]) -> Result<()> {
        let total = 4 + bytes.len();
        let npages = total.div_ceil(crate::PAGE_SIZE) as u32;
        self.extend_to(npages)?;
        let mut buf = Vec::with_capacity(total);
        buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        buf.extend_from_slice(bytes);
        for (i, chunk) in buf.chunks(crate::PAGE_SIZE).enumerate() {
            let mut page = Page::zeroed();
            page.write_slice(0, chunk);
            self.write(i as u32, &page)?;
        }
        Ok(())
    }

    /// Reads back a blob written by [`write_blob`](Self::write_blob).
    // COST: blob_pages pages
    pub fn read_blob(&self) -> Result<Vec<u8>> {
        let first = self.read(0)?;
        let len = first.read_u32(0) as usize;
        let total = 4 + len;
        let mut buf = Vec::with_capacity(total);
        buf.extend_from_slice(first.read_slice(0, total.min(crate::PAGE_SIZE)));
        let npages = total.div_ceil(crate::PAGE_SIZE) as u32;
        for i in 1..npages {
            let page = self.read(i)?;
            let take = (total - buf.len()).min(crate::PAGE_SIZE);
            buf.extend_from_slice(page.read_slice(0, take));
        }
        Ok(buf[4..].to_vec())
    }
}

impl std::fmt::Debug for PagedFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PagedFile({:?})", self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::Disk;
    use crate::page::PAGE_SIZE;

    fn file() -> (Arc<Disk>, PagedFile) {
        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        let f = PagedFile::create(io, "t");
        (disk, f)
    }

    #[test]
    fn append_read_write() {
        let (_disk, f) = file();
        assert!(f.is_empty().unwrap());
        let mut p = Page::zeroed();
        p.write_u16(0, 5);
        assert_eq!(f.append(&p).unwrap(), 0);
        assert_eq!(f.len().unwrap(), 1);
        assert_eq!(f.read(0).unwrap().read_u16(0), 5);
        p.write_u16(0, 6);
        f.write(0, &p).unwrap();
        assert_eq!(f.read(0).unwrap().read_u16(0), 6);
    }

    #[test]
    fn modify_charges_read_plus_write() {
        let (disk, f) = file();
        f.append(&Page::zeroed()).unwrap();
        let before = disk.snapshot();
        f.modify(0, |p| p.write_u8(0, 9)).unwrap();
        let d = disk.snapshot().since(before);
        assert_eq!((d.reads, d.writes), (1, 1));
        assert_eq!(f.read(0).unwrap().read_u8(0), 9);
    }

    #[test]
    fn blob_roundtrip_small_and_multipage() {
        let (_disk, f) = file();
        for len in [0usize, 1, 100, PAGE_SIZE - 4, PAGE_SIZE, 3 * PAGE_SIZE + 17] {
            let blob: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            f.write_blob(&blob).unwrap();
            assert_eq!(f.read_blob().unwrap(), blob, "len {len}");
        }
    }

    #[test]
    fn blob_overwrite_shrinks_logical_content() {
        let (_disk, f) = file();
        f.write_blob(&vec![9u8; 2 * PAGE_SIZE]).unwrap();
        f.write_blob(b"tiny").unwrap();
        assert_eq!(f.read_blob().unwrap(), b"tiny");
    }

    #[test]
    fn open_shares_contents() {
        let (disk, f) = file();
        f.append(&Page::zeroed()).unwrap();
        let io: Arc<dyn PageIo> = disk as Arc<dyn PageIo>;
        let g = PagedFile::open(io, f.id());
        assert_eq!(g.len().unwrap(), 1);
    }
}
