//! Property-based tests for the paged disk simulator.

use proptest::prelude::*;
use setsig_pagestore::{Disk, Page, PAGE_SIZE};
use std::sync::Arc;

/// Operations applied to a disk model.
#[derive(Debug, Clone)]
enum Op {
    Append { file: usize, tag: u64 },
    Write { file: usize, page: u32, tag: u64 },
    Read { file: usize, page: u32 },
}

fn op_strategy(nfiles: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..nfiles, any::<u64>()).prop_map(|(file, tag)| Op::Append { file, tag }),
        (0..nfiles, 0u32..32, any::<u64>()).prop_map(|(file, page, tag)| Op::Write {
            file,
            page,
            tag
        }),
        (0..nfiles, 0u32..32).prop_map(|(file, page)| Op::Read { file, page }),
    ]
}

proptest! {
    /// The disk behaves exactly like a Vec<Vec<u64>> model: same contents,
    /// same out-of-bounds behaviour, and counters equal the number of
    /// successful accesses.
    #[test]
    fn disk_matches_vec_model(ops in proptest::collection::vec(op_strategy(3), 1..120)) {
        let disk = Disk::new();
        let files: Vec<_> = (0..3).map(|i| disk.create_file(&format!("f{i}"))).collect();
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); 3];
        let mut expect_reads = 0u64;
        let mut expect_writes = 0u64;

        for op in ops {
            match op {
                Op::Append { file, tag } => {
                    let mut p = Page::zeroed();
                    p.write_u64(0, tag);
                    let n = disk.append_page(files[file], &p).unwrap();
                    prop_assert_eq!(n as usize, model[file].len());
                    model[file].push(tag);
                    expect_writes += 1;
                }
                Op::Write { file, page, tag } => {
                    let mut p = Page::zeroed();
                    p.write_u64(0, tag);
                    let res = disk.write_page(files[file], page, &p);
                    if (page as usize) < model[file].len() {
                        prop_assert!(res.is_ok());
                        model[file][page as usize] = tag;
                        expect_writes += 1;
                    } else {
                        prop_assert!(res.is_err());
                    }
                }
                Op::Read { file, page } => {
                    let res = disk.read_page(files[file], page);
                    if (page as usize) < model[file].len() {
                        prop_assert_eq!(res.unwrap().read_u64(0), model[file][page as usize]);
                        expect_reads += 1;
                    } else {
                        prop_assert!(res.is_err());
                    }
                }
            }
        }

        let snap = disk.snapshot();
        prop_assert_eq!(snap.reads, expect_reads);
        prop_assert_eq!(snap.writes, expect_writes);
        for (i, f) in files.iter().enumerate() {
            prop_assert_eq!(disk.page_count(*f).unwrap() as usize, model[i].len());
        }
    }

    /// Page bit accessors agree with a reference bit set for any pattern.
    #[test]
    fn page_bits_match_reference(bits in proptest::collection::btree_set(0usize..PAGE_SIZE * 8, 0..64)) {
        let mut p = Page::zeroed();
        for &b in &bits {
            p.set_bit(b, true);
        }
        for probe in 0..PAGE_SIZE * 8 {
            prop_assert_eq!(p.get_bit(probe), bits.contains(&probe));
        }
    }

    /// A buffer pool is transparent: any read through it returns what an
    /// uncached disk read returns.
    #[test]
    fn buffer_pool_is_transparent(
        writes in proptest::collection::vec((0u32..8, any::<u64>()), 1..40),
        cap in 1usize..6,
    ) {
        use setsig_pagestore::{BufferPool, PageIo};
        let disk = Arc::new(Disk::new());
        let f = disk.create_file("t");
        disk.extend_to(f, 8).unwrap();
        let pool = BufferPool::new(Arc::clone(&disk), cap);
        let mut model = [0u64; 8];
        for (n, tag) in writes {
            let mut p = Page::zeroed();
            p.write_u64(0, tag);
            pool.write_page(f, n, &p).unwrap();
            model[n as usize] = tag;
            // Read through the pool and raw: must agree with the model.
            prop_assert_eq!(pool.read_page(f, n).unwrap().read_u64(0), tag);
        }
        for n in 0..8u32 {
            prop_assert_eq!(disk.read_page(f, n).unwrap().read_u64(0), model[n as usize]);
            prop_assert_eq!(pool.read_page(f, n).unwrap().read_u64(0), model[n as usize]);
        }
    }
}
