//! # setsig-workload — synthetic set-attribute workloads
//!
//! Generators matching the paper's data assumptions (§4): `N` objects, each
//! with an indexed set attribute of cardinality `D_t` drawn uniformly
//! without replacement from a `V`-element domain; and the query-set
//! generators the experiments need:
//!
//! * random query sets of a chosen cardinality `D_q` (the paper's
//!   unsuccessful-search regime — actual drops are governed by §4.4's
//!   hypergeometrics),
//! * *hit* queries derived from a stored target set, forcing actual drops
//!   (subset-of-target for `T ⊇ Q`, superset-of-target for `T ⊆ Q`),
//! * variable target cardinality and Zipf-skewed domains for the
//!   extension experiments §6 lists as further work,
//! * the university scenario (Students × hobbies/courses) from §1, used by
//!   the examples.
//!
//! Everything is deterministic given the seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
mod scenario;
mod trace;
mod zipf;

pub use generator::{Cardinality, Distribution, QueryGen, SetGenerator, WorkloadConfig};
pub use scenario::{university_hobbies, UniversityScenario, HOBBY_NAMES};
pub use trace::{generate_trace, TraceConfig, TraceOp};
pub use zipf::Zipf;
