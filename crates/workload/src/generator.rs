//! Set-value and query-set generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

use crate::zipf::Zipf;

/// How target-set cardinalities are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cardinality {
    /// Every set has exactly `D_t` elements — the paper's assumption.
    Fixed(u32),
    /// Uniformly between the bounds (inclusive) — the "cardinality of
    /// target sets varies" extension of §6.
    UniformRange(u32, u32),
}

impl Cardinality {
    fn sample(&self, rng: &mut StdRng) -> u32 {
        match *self {
            Cardinality::Fixed(d) => d,
            Cardinality::UniformRange(lo, hi) => rng.gen_range(lo..=hi),
        }
    }

    /// The mean cardinality (the `D_t` to hand the cost model).
    pub fn mean(&self) -> f64 {
        match *self {
            Cardinality::Fixed(d) => d as f64,
            Cardinality::UniformRange(lo, hi) => (lo + hi) as f64 / 2.0,
        }
    }
}

/// How elements are drawn from the domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Uniform over `0..V` — the paper's assumption.
    Uniform,
    /// Zipf-skewed with the given exponent (extension experiments).
    Zipf(f64),
}

/// The data half of a workload: `N` objects over a `V`-element domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Number of objects `N`.
    pub n_objects: u64,
    /// Domain cardinality `V`.
    pub domain: u64,
    /// Target set cardinality policy.
    pub cardinality: Cardinality,
    /// Element popularity distribution.
    pub distribution: Distribution,
    /// RNG seed; equal configs generate equal workloads.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's Table 2 data regime with the given `D_t`.
    pub fn paper(d_t: u32) -> Self {
        WorkloadConfig {
            n_objects: 32_000,
            domain: 13_000,
            cardinality: Cardinality::Fixed(d_t),
            distribution: Distribution::Uniform,
            seed: 0x1993_5160,
        }
    }

    /// A proportionally scaled-down instance (for fast simulation):
    /// divides both `N` and `V` by `factor`, keeping `d = D_t·N/V` intact.
    pub fn paper_scaled(d_t: u32, factor: u64) -> Self {
        let mut cfg = Self::paper(d_t);
        cfg.n_objects /= factor;
        cfg.domain = (cfg.domain / factor).max(d_t as u64 * 2);
        cfg
    }
}

/// Generates target sets according to a [`WorkloadConfig`].
pub struct SetGenerator {
    cfg: WorkloadConfig,
    rng: StdRng,
    zipf: Option<Zipf>,
}

impl SetGenerator {
    /// Creates the generator.
    pub fn new(cfg: WorkloadConfig) -> Self {
        let zipf = match cfg.distribution {
            Distribution::Uniform => None,
            Distribution::Zipf(theta) => Some(Zipf::new(cfg.domain as usize, theta)),
        };
        SetGenerator {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            zipf,
        }
    }

    /// The config in force.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    fn draw_element(&mut self) -> u64 {
        match &self.zipf {
            None => self.rng.gen_range(0..self.cfg.domain),
            Some(z) => z.sample(&mut self.rng) as u64,
        }
    }

    /// Draws one target set: distinct elements, ascending order.
    pub fn next_set(&mut self) -> Vec<u64> {
        let d = self
            .cfg
            .cardinality
            .sample(&mut self.rng)
            .min(self.cfg.domain as u32);
        let mut set = BTreeSet::new();
        while (set.len() as u32) < d {
            let e = self.draw_element();
            set.insert(e);
        }
        set.into_iter().collect()
    }

    /// Generates the whole database: `N` target sets.
    pub fn generate_all(&mut self) -> Vec<Vec<u64>> {
        (0..self.cfg.n_objects).map(|_| self.next_set()).collect()
    }
}

/// Generates query sets.
pub struct QueryGen {
    domain: u64,
    rng: StdRng,
}

impl QueryGen {
    /// Creates a query generator over a `domain`-element domain.
    pub fn new(domain: u64, seed: u64) -> Self {
        QueryGen {
            domain,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A uniform random query set of cardinality `d_q` — the paper's
    /// default (mostly unsuccessful-search) regime.
    pub fn random(&mut self, d_q: u32) -> Vec<u64> {
        assert!(d_q as u64 <= self.domain);
        let mut set = BTreeSet::new();
        while (set.len() as u32) < d_q {
            set.insert(self.rng.gen_range(0..self.domain));
        }
        set.into_iter().collect()
    }

    /// A `T ⊇ Q` query guaranteed to hit `target`: a random `d_q`-subset of
    /// the target set. Panics if `d_q > |target|`.
    pub fn subset_of_target(&mut self, target: &[u64], d_q: u32) -> Vec<u64> {
        assert!(
            d_q as usize <= target.len(),
            "d_q exceeds target cardinality"
        );
        let mut pool: Vec<u64> = target.to_vec();
        // Partial Fisher–Yates: the first d_q positions become the sample.
        for i in 0..d_q as usize {
            let j = self.rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        let mut q: Vec<u64> = pool[..d_q as usize].to_vec();
        q.sort_unstable();
        q
    }

    /// A `T ⊆ Q` query guaranteed to hit `target`: the target set plus
    /// random padding up to cardinality `d_q`. Panics if `d_q < |target|`.
    pub fn superset_of_target(&mut self, target: &[u64], d_q: u32) -> Vec<u64> {
        assert!(d_q as usize >= target.len(), "d_q below target cardinality");
        let mut set: BTreeSet<u64> = target.iter().copied().collect();
        while (set.len() as u32) < d_q {
            set.insert(self.rng.gen_range(0..self.domain));
        }
        set.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_cardinality_sets_are_exact_and_distinct() {
        let mut g = SetGenerator::new(WorkloadConfig::paper_scaled(10, 32));
        for _ in 0..100 {
            let s = g.next_set();
            assert_eq!(s.len(), 10);
            for w in s.windows(2) {
                assert!(w[0] < w[1], "sorted distinct");
            }
            assert!(*s.last().unwrap() < g.config().domain);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = SetGenerator::new(WorkloadConfig::paper_scaled(10, 64)).generate_all();
        let b = SetGenerator::new(WorkloadConfig::paper_scaled(10, 64)).generate_all();
        assert_eq!(a, b);
        let mut cfg = WorkloadConfig::paper_scaled(10, 64);
        cfg.seed += 1;
        let c = SetGenerator::new(cfg).generate_all();
        assert_ne!(a, c);
    }

    #[test]
    fn variable_cardinality_stays_in_range() {
        let cfg = WorkloadConfig {
            cardinality: Cardinality::UniformRange(5, 15),
            ..WorkloadConfig::paper_scaled(10, 32)
        };
        let mut g = SetGenerator::new(cfg);
        let mut seen_not_ten = false;
        for _ in 0..200 {
            let s = g.next_set();
            assert!((5..=15).contains(&(s.len() as u32)));
            if s.len() != 10 {
                seen_not_ten = true;
            }
        }
        assert!(seen_not_ten, "range should actually vary");
        assert_eq!(Cardinality::UniformRange(5, 15).mean(), 10.0);
    }

    #[test]
    fn element_usage_roughly_uniform() {
        // Supports the d = D_t·N/V assumption of the NIX model.
        let cfg = WorkloadConfig {
            n_objects: 2000,
            domain: 100,
            cardinality: Cardinality::Fixed(5),
            distribution: Distribution::Uniform,
            seed: 5,
        };
        let sets = SetGenerator::new(cfg).generate_all();
        let mut counts = vec![0u32; 100];
        for s in &sets {
            for &e in s {
                counts[e as usize] += 1;
            }
        }
        let expect = 2000.0 * 5.0 / 100.0; // d = 100
        for (e, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expect * 0.6 && (c as f64) < expect * 1.4,
                "element {e}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn zipf_workload_is_skewed() {
        let cfg = WorkloadConfig {
            n_objects: 2000,
            domain: 1000,
            cardinality: Cardinality::Fixed(5),
            distribution: Distribution::Zipf(1.0),
            seed: 5,
        };
        let sets = SetGenerator::new(cfg).generate_all();
        let mut counts = vec![0u32; 1000];
        for s in &sets {
            for &e in s {
                counts[e as usize] += 1;
            }
        }
        let head: u32 = counts[..10].iter().sum();
        let tail: u32 = counts[990..].iter().sum();
        assert!(head > 10 * tail, "head {head} vs tail {tail}");
    }

    #[test]
    fn subset_query_hits_its_target() {
        let mut qg = QueryGen::new(1000, 9);
        let target: Vec<u64> = (0..10).map(|i| i * 37).collect();
        for d_q in 1..=10 {
            let q = qg.subset_of_target(&target, d_q);
            assert_eq!(q.len(), d_q as usize);
            assert!(q.iter().all(|e| target.contains(e)));
            for w in q.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn superset_query_contains_its_target() {
        let mut qg = QueryGen::new(1000, 9);
        let target: Vec<u64> = vec![3, 14, 159];
        let q = qg.superset_of_target(&target, 20);
        assert_eq!(q.len(), 20);
        for e in &target {
            assert!(q.contains(e));
        }
    }

    #[test]
    fn random_queries_have_requested_cardinality() {
        let mut qg = QueryGen::new(50, 1);
        for d_q in [1u32, 10, 50] {
            assert_eq!(qg.random(d_q).len(), d_q as usize);
        }
    }
}
