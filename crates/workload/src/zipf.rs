//! A simple Zipf sampler over `0..n` via inverse-CDF table lookup.

use rand::Rng;

/// Zipf(θ) distribution over ranks `0..n`: rank `r` has probability
/// proportional to `1/(r+1)^θ`. `θ = 0` degenerates to uniform.
///
/// Used by the skewed-domain extension experiments; the paper itself
/// assumes uniform element popularity.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `theta ≥ 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs a nonempty domain");
        assert!(theta >= 0.0, "Zipf exponent must be nonnegative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Samples one rank.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        // First rank whose cumulative mass reaches u.
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 2000.0).abs() < 300.0, "counts {counts:?}");
        }
    }

    #[test]
    fn high_theta_concentrates_on_low_ranks() {
        let z = Zipf::new(1000, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut head = 0u32;
        let total = 10_000;
        for _ in 0..total {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With θ = 1.2, the top 10 of 1000 ranks carry a large share.
        assert!(head > total / 4, "head = {head}");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(5, 0.8);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }
}
