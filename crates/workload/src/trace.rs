//! Mixed operation traces: realistic interleavings of queries and updates.
//!
//! The paper evaluates retrieval, storage and update costs separately; a
//! deployed facility sees them interleaved. A [`TraceConfig`] describes the
//! mix (the same shape the cost-model advisor consumes) and
//! [`generate_trace`] expands it into a deterministic operation sequence
//! for system benchmarks and soak tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// One operation in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// Insert a new object with this target set.
    Insert {
        /// The new object's set-attribute value.
        set: Vec<u64>,
    },
    /// Delete the `i`-th still-live object (modulo the live count at
    /// execution time; no-op on an empty database).
    Delete {
        /// Selector into the live population.
        victim: u64,
    },
    /// A `T ⊇ Q` query.
    SupersetQuery {
        /// The query set.
        query: Vec<u64>,
    },
    /// A `T ⊆ Q` query.
    SubsetQuery {
        /// The query set.
        query: Vec<u64>,
    },
}

/// The mix and shape of a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Domain cardinality `V`.
    pub domain: u64,
    /// Target set cardinality for inserts.
    pub d_t: u32,
    /// `D_q` for ⊇ queries.
    pub d_q_superset: u32,
    /// `D_q` for ⊆ queries.
    pub d_q_subset: u32,
    /// Relative weights of (insert, delete, ⊇ query, ⊆ query).
    pub weights: [u32; 4],
    /// Number of operations.
    pub length: usize,
    /// RNG seed.
    pub seed: u64,
}

impl TraceConfig {
    /// A query-dominated mix over a scaled paper domain.
    pub fn query_heavy(length: usize) -> Self {
        TraceConfig {
            domain: 1625,
            d_t: 10,
            d_q_superset: 3,
            d_q_subset: 50,
            weights: [10, 2, 44, 44],
            length,
            seed: 0x7ace,
        }
    }

    /// An ingest-dominated mix (bulk loading with occasional reads).
    pub fn insert_heavy(length: usize) -> Self {
        TraceConfig {
            weights: [80, 5, 10, 5],
            ..Self::query_heavy(length)
        }
    }
}

/// Expands `cfg` into a deterministic operation sequence.
pub fn generate_trace(cfg: &TraceConfig) -> Vec<TraceOp> {
    assert!(
        cfg.weights.iter().sum::<u32>() > 0,
        "weights must not all be zero"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let total: u32 = cfg.weights.iter().sum();
    let draw_set = |rng: &mut StdRng, card: u32| -> Vec<u64> {
        let mut set = BTreeSet::new();
        while (set.len() as u32) < card.min(cfg.domain as u32) {
            set.insert(rng.gen_range(0..cfg.domain));
        }
        set.into_iter().collect()
    };
    (0..cfg.length)
        .map(|_| {
            let mut pick = rng.gen_range(0..total);
            for (i, &w) in cfg.weights.iter().enumerate() {
                if pick < w {
                    return match i {
                        0 => TraceOp::Insert {
                            set: draw_set(&mut rng, cfg.d_t),
                        },
                        1 => TraceOp::Delete { victim: rng.gen() },
                        2 => TraceOp::SupersetQuery {
                            query: draw_set(&mut rng, cfg.d_q_superset),
                        },
                        _ => TraceOp::SubsetQuery {
                            query: draw_set(&mut rng, cfg.d_q_subset),
                        },
                    };
                }
                pick -= w;
            }
            unreachable!("pick < total by construction")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_sized() {
        let cfg = TraceConfig::query_heavy(500);
        let a = generate_trace(&cfg);
        let b = generate_trace(&cfg);
        assert_eq!(a.len(), 500);
        assert_eq!(a, b);
    }

    #[test]
    fn mix_roughly_matches_weights() {
        let cfg = TraceConfig::query_heavy(10_000);
        let trace = generate_trace(&cfg);
        let inserts = trace
            .iter()
            .filter(|o| matches!(o, TraceOp::Insert { .. }))
            .count();
        let sups = trace
            .iter()
            .filter(|o| matches!(o, TraceOp::SupersetQuery { .. }))
            .count();
        // Weights 10/2/44/44: inserts ≈ 10%, ⊇ ≈ 44%.
        assert!(
            (0.07..0.13).contains(&(inserts as f64 / 10_000.0)),
            "{inserts}"
        );
        assert!((0.40..0.48).contains(&(sups as f64 / 10_000.0)), "{sups}");
    }

    #[test]
    fn sets_respect_cardinalities_and_domain() {
        let cfg = TraceConfig::insert_heavy(300);
        for op in generate_trace(&cfg) {
            match op {
                TraceOp::Insert { set } => {
                    assert_eq!(set.len() as u32, cfg.d_t);
                    assert!(set.iter().all(|&e| e < cfg.domain));
                }
                TraceOp::SupersetQuery { query } => {
                    assert_eq!(query.len() as u32, cfg.d_q_superset)
                }
                TraceOp::SubsetQuery { query } => {
                    assert_eq!(query.len() as u32, cfg.d_q_subset)
                }
                TraceOp::Delete { .. } => {}
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_weights_rejected() {
        let cfg = TraceConfig {
            weights: [0; 4],
            ..TraceConfig::query_heavy(10)
        };
        let _ = generate_trace(&cfg);
    }
}
