//! The §1 university scenario: Students with hobby and course sets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// A pool of hobby names, so example databases read like the paper's
/// (`"Baseball"`, `"Fishing"`, …) rather than opaque integers.
pub const HOBBY_NAMES: &[&str] = &[
    "Baseball",
    "Fishing",
    "Tennis",
    "Golf",
    "Football",
    "Swimming",
    "Chess",
    "Skiing",
    "Running",
    "Cycling",
    "Hiking",
    "Climbing",
    "Sailing",
    "Rowing",
    "Archery",
    "Judo",
    "Karate",
    "Kendo",
    "Shogi",
    "Go",
    "Painting",
    "Pottery",
    "Calligraphy",
    "Origami",
    "Photography",
    "Gardening",
    "Cooking",
    "Baking",
    "Reading",
    "Writing",
    "Astronomy",
    "Birdwatching",
    "Surfing",
    "Skating",
    "Bowling",
    "Billiards",
    "Darts",
    "Badminton",
    "Volleyball",
    "Basketball",
    "Handball",
    "Rugby",
    "Cricket",
    "Squash",
    "Fencing",
    "Boxing",
    "Wrestling",
    "Weightlifting",
    "Yoga",
    "Dancing",
];

/// One generated student.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniversityScenario {
    /// Student name, e.g. `"Student0042"`.
    pub name: String,
    /// Hobby set (strings drawn from [`HOBBY_NAMES`]).
    pub hobbies: Vec<String>,
    /// Course numbers (stand-ins for `Course` OIDs).
    pub courses: Vec<u64>,
}

/// Generates `n` students, each with 1–`max_hobbies` hobbies and
/// 2–`max_courses` courses, deterministically from `seed`.
pub fn university_hobbies(
    n: usize,
    max_hobbies: usize,
    max_courses: usize,
    seed: u64,
) -> Vec<UniversityScenario> {
    assert!(max_hobbies >= 1 && max_hobbies <= HOBBY_NAMES.len());
    assert!(max_courses >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let nh = rng.gen_range(1..=max_hobbies);
            let mut hobbies = BTreeSet::new();
            while hobbies.len() < nh {
                hobbies.insert(HOBBY_NAMES[rng.gen_range(0..HOBBY_NAMES.len())].to_owned());
            }
            let nc = rng.gen_range(2..=max_courses);
            let mut courses = BTreeSet::new();
            while courses.len() < nc {
                courses.insert(rng.gen_range(0..500u64));
            }
            UniversityScenario {
                name: format!("Student{i:04}"),
                hobbies: hobbies.into_iter().collect(),
                courses: courses.into_iter().collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_respects_bounds_and_is_deterministic() {
        let a = university_hobbies(50, 5, 6, 42);
        let b = university_hobbies(50, 5, 6, 42);
        assert_eq!(a, b);
        for s in &a {
            assert!(!s.hobbies.is_empty() && s.hobbies.len() <= 5);
            assert!(s.courses.len() >= 2 && s.courses.len() <= 6);
            assert!(s.name.starts_with("Student"));
            // Hobbies are distinct and from the pool.
            for h in &s.hobbies {
                assert!(HOBBY_NAMES.contains(&h.as_str()));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            university_hobbies(10, 5, 6, 1),
            university_hobbies(10, 5, 6, 2)
        );
    }
}
