//! A cost-based query planner over set access facilities.
//!
//! §6 lists "query processing schemes based on BSSF" as further work. This
//! example builds one: given a query, consult the paper's cost model to
//! choose between BSSF (plain or smart) and NIX — including the smart
//! parameter (`j` element cap for ⊇, slice budget for ⊆) — then execute
//! the chosen plan and compare against what the other plans would have
//! cost.
//!
//! ```text
//! cargo run --release --example planner
//! ```

use setsig::nix::Nix;
use setsig::prelude::*;
use std::sync::Arc;

/// The plans the planner chooses among.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Plan {
    BssfPlain,
    BssfSmart { cap: u32 },
    NixPlain,
    NixSmart { cap: u32 },
}

/// Pick the cheapest plan for a query under the cost model.
fn choose(p: Params, f: u32, m: u32, d_t: u32, q: &SetQuery) -> (Plan, f64) {
    let bssf = BssfModel::new(p, f, m, d_t);
    let nix = NixModel::new(p, d_t);
    let d_q = q.d_q() as u32;
    let mut plans: Vec<(Plan, f64)> = Vec::new();
    match q.predicate {
        SetPredicate::HasSubset => {
            plans.push((Plan::BssfPlain, bssf.rc_superset(d_q)));
            let cap = bssf.best_superset_cap(d_q.max(1));
            plans.push((Plan::BssfSmart { cap }, bssf.rc_superset_smart(d_q, cap)));
            plans.push((Plan::NixPlain, nix.rc_superset(d_q)));
            plans.push((Plan::NixSmart { cap: 2 }, nix.rc_superset_smart(d_q, 2)));
        }
        SetPredicate::InSubset => {
            plans.push((Plan::BssfPlain, bssf.rc_subset(d_q)));
            let opt = bssf.d_q_opt().round().max(1.0) as u32;
            if d_q < opt {
                let slice_cap = (f as f64 - bssf.m_s(opt)).round().max(1.0) as u32;
                plans.push((
                    Plan::BssfSmart { cap: slice_cap },
                    bssf.rc_subset_smart(d_q),
                ));
            }
            plans.push((Plan::NixPlain, nix.rc_subset(d_q)));
        }
        _ => plans.push((Plan::BssfPlain, f64::INFINITY)),
    }
    plans
        .into_iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap()
}

fn main() {
    let d_t = 10;
    // A 1/8-scale paper instance.
    let p = Params::scaled(4000, 1625);
    let cfg = WorkloadConfig {
        n_objects: p.n,
        domain: p.v,
        ..WorkloadConfig::paper(d_t)
    };
    let sets = SetGenerator::new(cfg).generate_all();

    let disk = Arc::new(Disk::new());
    let io = || Arc::clone(&disk) as Arc<dyn PageIo>;
    let (f, m) = (500u32, 2u32);
    let mut bssf = Bssf::create(io(), "pl", SignatureConfig::new(f, m).unwrap()).unwrap();
    let items: Vec<(Oid, Vec<ElementKey>)> = sets
        .iter()
        .enumerate()
        .map(|(i, s)| {
            (
                Oid::new(i as u64),
                s.iter().map(|&e| ElementKey::from(e)).collect(),
            )
        })
        .collect();
    bssf.bulk_load(&items).unwrap();
    let mut nix = Nix::on_io(io(), "pl");
    for (oid, set) in &items {
        nix.insert(*oid, set).unwrap();
    }

    let mut qg = QueryGen::new(cfg.domain, 2024);
    let workload: Vec<SetQuery> = vec![
        SetQuery::has_subset(qg.random(1).into_iter().map(ElementKey::from).collect()),
        SetQuery::has_subset(qg.random(2).into_iter().map(ElementKey::from).collect()),
        SetQuery::has_subset(qg.random(8).into_iter().map(ElementKey::from).collect()),
        SetQuery::in_subset(qg.random(30).into_iter().map(ElementKey::from).collect()),
        SetQuery::in_subset(qg.random(200).into_iter().map(ElementKey::from).collect()),
        SetQuery::in_subset(qg.random(1000).into_iter().map(ElementKey::from).collect()),
    ];

    println!(
        "planner: F = {f}, m = {m}, D_t = {d_t}, N = {}, V = {}\n",
        p.n, p.v
    );
    for q in &workload {
        let (plan, predicted) = choose(p, f, m, d_t, q);
        let before = disk.snapshot();
        let candidates = match plan {
            Plan::BssfPlain => bssf.candidates(q).unwrap(),
            Plan::BssfSmart { cap } => match q.predicate {
                SetPredicate::HasSubset => {
                    bssf.candidates_superset_smart(q, cap as usize).unwrap().0
                }
                _ => bssf.candidates_subset_smart(q, cap as usize).unwrap().0,
            },
            Plan::NixPlain => nix.candidates(q).unwrap(),
            Plan::NixSmart { cap } => nix.candidates_superset_smart(q, cap as usize).unwrap(),
        };
        let filter_pages = disk.snapshot().since(before).accesses();
        // Count the resolution fetches (1 page per candidate here).
        let total = filter_pages + candidates.len() as u64;
        println!("{} (D_q = {:>4}) → {:?}", q.predicate, q.d_q(), plan);
        println!(
            "    predicted {predicted:>8.1} pages   measured {total:>6} pages   {} candidates",
            candidates.len()
        );
    }
    println!("\nok.");
}
