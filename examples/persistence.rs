//! Persisting and reloading a signature-indexed database.
//!
//! Builds a BSSF and a nested index over a workload, checkpoints their
//! catalog state (`sync_meta`), saves the entire simulated disk to a real
//! file, reloads it in a "second session", reopens both facilities from
//! their meta files, and verifies queries answer identically — at the same
//! page-access cost.
//!
//! ```text
//! cargo run --release --example persistence
//! ```

use setsig::nix::Nix;
use setsig::prelude::*;
use std::sync::Arc;

fn main() {
    let image = std::env::temp_dir().join("setsig-demo-image.bin");
    let cfg = WorkloadConfig {
        n_objects: 2000,
        domain: 800,
        ..WorkloadConfig::paper(10)
    };
    let sets = SetGenerator::new(cfg).generate_all();
    let items: Vec<(Oid, Vec<ElementKey>)> = sets
        .iter()
        .enumerate()
        .map(|(i, s)| {
            (
                Oid::new(i as u64),
                s.iter().map(|&e| ElementKey::from(e)).collect(),
            )
        })
        .collect();

    // ── Session 1: build, checkpoint, save ──────────────────────────────
    let disk = Arc::new(Disk::new());
    let io = || Arc::clone(&disk) as Arc<dyn PageIo>;
    let sig_cfg = SignatureConfig::new(250, 2).unwrap();
    let mut bssf = Bssf::create(io(), "hobbies", sig_cfg).unwrap();
    bssf.bulk_load(&items).unwrap();
    let mut nix = Nix::on_io(io(), "hobbies");
    for (oid, set) in &items {
        nix.insert(*oid, set).unwrap();
    }

    let probe = SetQuery::has_subset(vec![
        ElementKey::from(sets[7][0]),
        ElementKey::from(sets[7][1]),
    ]);
    let before = disk.snapshot();
    let original = bssf.candidates(&probe).unwrap();
    let original_cost = disk.snapshot().since(before).accesses();
    let original_nix = nix.candidates(&probe).unwrap();

    let bssf_meta = bssf.sync_meta().unwrap();
    let nix_meta = nix.sync_meta().unwrap();
    disk.save_to(&image).unwrap();
    println!(
        "session 1: indexed {} objects, checkpointed catalogs, saved {} pages to {}",
        sets.len(),
        disk.total_pages(),
        image.display()
    );

    // ── Session 2: load, reopen from catalog, re-query ─────────────────
    let loaded = Arc::new(Disk::load_from(&image).unwrap());
    let io = || Arc::clone(&loaded) as Arc<dyn PageIo>;
    let reopened_bssf = Bssf::open(io(), bssf_meta).unwrap();
    let reopened_nix = Nix::open(io(), nix_meta).unwrap();
    println!(
        "session 2: reopened BSSF ({} entries) and NIX ({} objects, rc = {})",
        reopened_bssf.indexed_count(),
        reopened_nix.indexed_count(),
        reopened_nix.tree().rc_lookup()
    );

    let before = loaded.snapshot();
    let answer = reopened_bssf.candidates(&probe).unwrap();
    let cost = loaded.snapshot().since(before).accesses();
    assert_eq!(answer, original, "reloaded BSSF must answer identically");
    assert_eq!(cost, original_cost, "…at the same page-access cost");
    println!(
        "  BSSF: same {} candidates at {} page accesses (was {})",
        answer.len(),
        cost,
        original_cost
    );

    let answer = reopened_nix.candidates(&probe).unwrap();
    assert_eq!(answer, original_nix, "reloaded NIX must answer identically");
    println!("  NIX:  same {} candidates", answer.len());

    std::fs::remove_file(&image).ok();
    println!("ok.");
}
