//! Tuning the signature design parameters `F` and `m` with the cost model.
//!
//! The paper's central design lesson (§5.1.2, §6): the text-retrieval
//! optimum `m_opt = F·ln2/D_t` minimizes *false drops* but not *total
//! retrieval cost* for BSSF — a small `m` (1–3) is far better because each
//! query-signature bit costs a slice read. This example sweeps the design
//! space analytically, prints the trade-off, picks a configuration, and
//! then verifies the choice by measuring the real implementation.
//!
//! ```text
//! cargo run --release --example tuning
//! ```

use setsig::costmodel::{advise, m_opt, WorkloadProfile};
use setsig::prelude::*;
use std::sync::Arc;

fn main() {
    let p = Params::paper();
    let d_t = 10;

    // ── Analytic sweep: RC(T ⊇ Q, D_q = 3) over m for F = 500 ─────────
    println!("BSSF retrieval cost (T ⊇ Q, D_t = 10, F = 500, D_q = 3) as m varies:");
    println!("{:>4} {:>12} {:>14}", "m", "RC (pages)", "false drop F_d");
    let mut best = (1u32, f64::INFINITY);
    for m in 1..=40u32 {
        let model = BssfModel::new(p, 500, m, d_t);
        let rc = model.rc_superset(3);
        if rc < best.1 {
            best = (m, rc);
        }
        if m <= 6 || m % 10 == 0 || m == 35 {
            let fd = setsig::costmodel::fd_superset(500, m, d_t, 3);
            println!("{m:>4} {rc:>12.1} {fd:>14.2e}");
        }
    }
    let opt = m_opt(500, d_t);
    println!(
        "\n→ total-cost optimum m = {} (RC = {:.1}); the false-drop optimum m_opt = {:.1} costs {:.1} pages",
        best.0,
        best.1,
        opt,
        BssfModel::new(p, 500, opt.round() as u32, d_t).rc_superset(3)
    );

    // ── F sweep at the chosen m ─────────────────────────────────────────
    println!("\nStorage/retrieval trade-off over F (m = {}):", best.0);
    println!(
        "{:>6} {:>10} {:>14} {:>14}",
        "F", "SC pages", "RC ⊇ (D_q=3)", "RC ⊆ (D_q=100)"
    );
    for f in [125u32, 250, 500, 1000, 2000] {
        let model = BssfModel::new(p, f, best.0, d_t);
        println!(
            "{f:>6} {:>10} {:>14.1} {:>14.1}",
            model.sc(),
            model.rc_superset(3),
            model.rc_subset(100)
        );
    }

    // ── Verify the headline with the real implementation ───────────────
    // Small instance: 4,000 objects over a 1,625-element domain (the
    // paper's geometry divided by 8).
    let cfg = WorkloadConfig {
        n_objects: 4000,
        domain: 1625,
        ..WorkloadConfig::paper(d_t)
    };
    let sets = SetGenerator::new(cfg).generate_all();
    let disk = Arc::new(Disk::new());
    let io = || Arc::clone(&disk) as Arc<dyn PageIo>;

    let mut small_m = Bssf::create(io(), "m2", SignatureConfig::new(500, 2).unwrap()).unwrap();
    let mut opt_m = Bssf::create(io(), "m35", SignatureConfig::new(500, 35).unwrap()).unwrap();
    let items: Vec<(Oid, Vec<ElementKey>)> = sets
        .iter()
        .enumerate()
        .map(|(i, s)| {
            (
                Oid::new(i as u64),
                s.iter().map(|&e| ElementKey::from(e)).collect(),
            )
        })
        .collect();
    small_m.bulk_load(&items).unwrap();
    opt_m.bulk_load(&items).unwrap();

    let mut qg = QueryGen::new(cfg.domain, 99);
    let trials = 20;
    let mut pages = [0u64; 2];
    for _ in 0..trials {
        let q = SetQuery::has_subset(qg.random(3).into_iter().map(ElementKey::from).collect());
        for (i, facility) in [&small_m, &opt_m].into_iter().enumerate() {
            let before = disk.snapshot();
            let c = facility.candidates(&q).unwrap();
            pages[i] += disk.snapshot().since(before).accesses() + c.len() as u64;
        }
    }
    println!(
        "\nMeasured filter cost over {trials} random ⊇ queries (D_q = 3, N = {}):",
        cfg.n_objects
    );
    println!(
        "  m = 2  : {:>6.1} pages/query",
        pages[0] as f64 / trials as f64
    );
    println!(
        "  m = 35 : {:>6.1} pages/query  (m_opt — reads 3×35 ≈ 105 slices!)",
        pages[1] as f64 / trials as f64
    );
    assert!(pages[0] < pages[1]);
    println!("\nok — small m wins, as §5.1.2 concludes.");

    // ── Let the advisor search the whole design space ───────────────────
    let profile = WorkloadProfile::paper_default();
    let rec = advise(p, &profile);
    println!(
        "\nAdvisor (mixed ⊇/⊆ workload, 10% inserts, D_t = {}):",
        profile.d_t
    );
    println!(
        "  recommended: {:?} — {:.1} pages/op expected, {} pages of storage",
        rec.organization, rec.expected_cost, rec.storage_pages
    );
    println!("  runners-up:");
    for (org, cost, sc) in rec.candidates.iter().skip(1).take(4) {
        println!("    {org:?} — {cost:.1} pages/op, {sc} pages");
    }
    let heavy_insert = WorkloadProfile {
        superset_fraction: 0.05,
        subset_fraction: 0.05,
        insert_fraction: 0.90,
        ..profile
    };
    let rec = advise(p, &heavy_insert);
    println!(
        "  under a 90%-insert workload it switches to: {:?} ({:.1} pages/op)",
        rec.organization, rec.expected_cost
    );
}
