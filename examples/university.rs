//! University workload: all four set access facilities side by side.
//!
//! Generates a few thousand students with hobby sets (the §1 scenario at
//! scale), indexes `Student.hobbies` with SSF, BSSF, FSSF and NIX over the same
//! database, and compares measured page-access costs on the paper's two
//! query types — including the full-scan baseline nothing in the paper
//! would stoop to.
//!
//! ```text
//! cargo run --release --example university
//! ```

use setsig::prelude::*;
use setsig::workload::university_hobbies;
use std::sync::Arc;

fn main() {
    const N: usize = 5000;
    let students = university_hobbies(N, 8, 6, 0x5e7516);

    let mut db = Database::in_memory();
    let student = db
        .define_class(ClassDef::new(
            "Student",
            vec![
                ("name", AttrType::Str),
                ("hobbies", AttrType::set_of(AttrType::Str)),
            ],
        ))
        .unwrap();

    for s in &students {
        db.insert_object(
            student,
            vec![
                Value::str(&s.name),
                Value::set(s.hobbies.iter().map(|h| Value::str(h)).collect()),
            ],
        )
        .unwrap();
    }

    // Four facilities over the same attribute, same disk: measured costs
    // are directly comparable.
    let io = || Arc::clone(db.disk()) as Arc<dyn PageIo>;
    let ssf = Ssf::create(io(), "hob", SignatureConfig::new(128, 2).unwrap()).unwrap();
    let bssf = Bssf::create(io(), "hob", SignatureConfig::new(128, 2).unwrap()).unwrap();
    let fssf = Fssf::create(io(), "hob", FssfConfig::new(128, 16, 2).unwrap()).unwrap();
    let nix = Nix::on_io(io(), "hob");
    let ssf_idx = db
        .register_facility(student, "hobbies", Box::new(ssf))
        .unwrap();
    let bssf_idx = db
        .register_facility(student, "hobbies", Box::new(bssf))
        .unwrap();
    let fssf_idx = db
        .register_facility(student, "hobbies", Box::new(fssf))
        .unwrap();
    let nix_idx = db
        .register_facility(student, "hobbies", Box::new(nix))
        .unwrap();

    println!(
        "{N} students, {} object-store pages",
        db.store().storage_pages().unwrap()
    );
    for (name, idx) in [
        ("SSF", ssf_idx),
        ("BSSF", bssf_idx),
        ("FSSF", fssf_idx),
        ("NIX", nix_idx),
    ] {
        let pages = db.facility(idx).unwrap().storage_pages().unwrap();
        println!("  {name:<5} storage: {pages} pages");
    }

    let queries = vec![
        (
            "hobbies has-subset (Baseball, Fishing)        [T ⊇ Q]",
            SetQuery::has_subset(vec![
                ElementKey::from("Baseball"),
                ElementKey::from("Fishing"),
            ]),
        ),
        (
            "hobbies has-subset (Chess, Go, Shogi)         [T ⊇ Q]",
            SetQuery::has_subset(vec![
                ElementKey::from("Chess"),
                ElementKey::from("Go"),
                ElementKey::from("Shogi"),
            ]),
        ),
        (
            "hobbies in-subset (Baseball, Fishing, Tennis) [T ⊆ Q]",
            SetQuery::in_subset(vec![
                ElementKey::from("Baseball"),
                ElementKey::from("Fishing"),
                ElementKey::from("Tennis"),
            ]),
        ),
        (
            "hobbies overlaps (Surfing, Sailing)           [T ∩ Q ≠ ∅]",
            SetQuery::overlaps(vec![
                ElementKey::from("Surfing"),
                ElementKey::from("Sailing"),
            ]),
        ),
    ];

    for (label, q) in queries {
        println!("\nselect Student where {label}");
        let scan = db.scan_set_query(student, "hobbies", &q).unwrap();
        let mut answers: Option<Vec<Oid>> = None;
        for (name, idx) in [
            ("SSF", ssf_idx),
            ("BSSF", bssf_idx),
            ("FSSF", fssf_idx),
            ("NIX", nix_idx),
        ] {
            let r = db.execute_set_query(idx, &q).unwrap();
            println!(
                "  {name:<9} {:>5} pages  ({} candidates, {} false drops, {} answers)",
                r.io.accesses(),
                r.report.candidates,
                r.report.false_drops,
                r.actual.len()
            );
            // All facilities must agree with each other and the scan.
            if let Some(prev) = &answers {
                assert_eq!(prev, &r.actual, "{name} disagrees");
            }
            assert_eq!(r.actual, scan.actual, "{name} disagrees with full scan");
            answers = Some(r.actual);
        }
        println!(
            "  full scan {:>5} pages  ({} answers)",
            scan.io.accesses(),
            scan.actual.len()
        );
    }
    println!("\nok — every facility agreed with the full scan on every query.");
}
