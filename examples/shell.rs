//! An interactive shell speaking the paper's query language.
//!
//! Loads the university database (5,000 students indexed by a BSSF) and
//! accepts queries like the paper's Q1/Q2 on stdin:
//!
//! ```text
//! cargo run --release --example shell
//! > select Student where hobbies has-subset ("Baseball", "Fishing")
//! > select Student where hobbies in-subset ("Baseball", "Fishing", "Tennis")
//! > select Student where hobbies contains "Chess"
//! ```
//!
//! When stdin is not a terminal (e.g. CI), a scripted demo session runs
//! instead.

use setsig::prelude::*;
use setsig::workload::university_hobbies;
use std::io::{BufRead, IsTerminal, Write};
use std::sync::Arc;

fn main() {
    let mut db = Database::in_memory();
    let student = db
        .define_class(ClassDef::new(
            "Student",
            vec![
                ("name", AttrType::Str),
                ("hobbies", AttrType::set_of(AttrType::Str)),
            ],
        ))
        .unwrap();
    let io = Arc::clone(db.disk()) as Arc<dyn PageIo>;
    let bssf = Bssf::create(io, "hobbies", SignatureConfig::new(256, 2).unwrap()).unwrap();
    db.register_facility(student, "hobbies", Box::new(bssf))
        .unwrap();

    for s in university_hobbies(5000, 8, 6, 42) {
        db.insert_object(
            student,
            vec![
                Value::str(&s.name),
                Value::set(s.hobbies.iter().map(|h| Value::str(h)).collect()),
            ],
        )
        .unwrap();
    }
    println!("setsig shell — 5000 Students, hobbies indexed by BSSF (F = 256, m = 2)");
    println!("operators: has-subset | in-subset | equals | overlaps | contains; quit with \\q\n");

    let stdin = std::io::stdin();
    if stdin.is_terminal() {
        let mut line = String::new();
        loop {
            print!("> ");
            std::io::stdout().flush().ok();
            line.clear();
            if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
                break;
            }
            let text = line.trim();
            if text.is_empty() {
                continue;
            }
            if text == "\\q" || text == "quit" || text == "exit" {
                break;
            }
            run_one(&db, text);
        }
    } else {
        // Scripted demo for non-interactive runs.
        for text in [
            r#"select Student where hobbies has-subset ("Baseball", "Fishing")"#,
            r#"select Student where hobbies in-subset ("Baseball", "Fishing", "Tennis")"#,
            r#"select Student where hobbies contains "Chess""#,
            r#"select Student where hobbies overlaps ("Surfing", "Sailing")"#,
            r#"select Student where hobbies frobnicates ("oops")"#,
        ] {
            println!("> {text}");
            run_one(&db, text);
        }
    }
}

fn run_one(db: &Database, text: &str) {
    match db.run_query(text) {
        Ok(result) => {
            for oid in result.actual.iter().take(5) {
                if let Ok(obj) = db.get_object(*oid) {
                    println!("  {:?}  hobbies: {:?}", obj.values[0], obj.values[1]);
                }
            }
            if result.actual.len() > 5 {
                println!("  … {} more", result.actual.len() - 5);
            }
            println!(
                "  {} matches in {} page accesses ({} candidates, {} false drops)\n",
                result.actual.len(),
                result.io.accesses(),
                result.report.candidates,
                result.report.false_drops
            );
        }
        Err(e) => println!("  error: {e}\n"),
    }
}
