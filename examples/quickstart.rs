//! Quickstart: the paper's §1–§3 walked end to end.
//!
//! Builds the sample database (Students with `hobbies` and `courses` set
//! attributes), shows how element signatures superimpose into set
//! signatures, demonstrates an actual drop and a false drop exactly like
//! Figures 1 and 2, and runs the paper's queries Q1 (`has-subset`) and Q2
//! (`in-subset`) through a bit-sliced signature file.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use setsig::prelude::*;
use std::sync::Arc;

fn main() {
    // ── 1. Signatures by hand (Figure 1 / Figure 2) ────────────────────
    // Tiny parameters so the bit patterns are printable: F = 16, m = 2.
    let cfg = SignatureConfig::new(16, 2).unwrap();
    let show = |label: &str, sig: &Signature| {
        let bits: String = (0..16)
            .map(|i| if sig.bitmap().get(i) { '1' } else { '0' })
            .collect();
        println!("  {label:<32} {bits}");
    };

    println!("Element signatures (F = 16, m = 2):");
    for name in ["Baseball", "Fishing", "Football", "Tennis"] {
        show(name, &Signature::for_element(&cfg, &ElementKey::from(name)));
    }

    let query_set = vec![ElementKey::from("Baseball"), ElementKey::from("Fishing")];
    let query_sig = Signature::for_set(&cfg, &query_set);
    println!("\nQuery signature for {{Baseball, Fishing}} (T ⊇ Q):");
    show("query", &query_sig);

    let actual = Signature::for_set(
        &cfg,
        &[
            ElementKey::from("Baseball"),
            ElementKey::from("Golf"),
            ElementKey::from("Fishing"),
        ],
    );
    println!("\nTarget {{Baseball, Golf, Fishing}} — a true superset:");
    show("target", &actual);
    println!(
        "  matches: {} (actual drop)",
        actual.matches_superset_of(&query_sig)
    );

    // Hunt for a false drop: a set that matches the signature test without
    // containing the query elements. With F = 16 they are easy to find.
    let mut false_drop = None;
    for i in 0..10_000u64 {
        let set = vec![ElementKey::from(i), ElementKey::from(i + 13_000)];
        let sig = Signature::for_set(&cfg, &set);
        if sig.matches_superset_of(&query_sig) {
            false_drop = Some((set, sig));
            break;
        }
    }
    if let Some((set, sig)) = false_drop {
        println!("\nA false drop — signature matches, set does not qualify:");
        show(&format!("target {set:?}"), &sig);
        println!("  this is why drop resolution re-checks every candidate");
    }

    // ── 2. The sample database of §1 ───────────────────────────────────
    let mut db = Database::in_memory();
    let course = db
        .define_class(ClassDef::new(
            "Course",
            vec![("name", AttrType::Str), ("category", AttrType::Str)],
        ))
        .unwrap();
    let student = db
        .define_class(ClassDef::new(
            "Student",
            vec![
                ("name", AttrType::Str),
                ("courses", AttrType::set_of(AttrType::Ref)),
                ("hobbies", AttrType::set_of(AttrType::Str)),
            ],
        ))
        .unwrap();

    let db_theory = db
        .insert_object(course, vec![Value::str("DB Theory"), Value::str("DB")])
        .unwrap();
    let db_systems = db
        .insert_object(course, vec![Value::str("DB Systems"), Value::str("DB")])
        .unwrap();
    let algorithms = db
        .insert_object(course, vec![Value::str("Algorithms"), Value::str("CS")])
        .unwrap();

    // Index Student.hobbies with a BSSF (m = 2 — the paper's recommended
    // small weight) and Student.courses with another.
    let io = Arc::clone(db.disk()) as Arc<dyn PageIo>;
    let hobbies_bssf = Bssf::create(
        Arc::clone(&io),
        "hobbies",
        SignatureConfig::new(256, 2).unwrap(),
    )
    .unwrap();
    let hobbies_idx = db
        .register_facility(student, "hobbies", Box::new(hobbies_bssf))
        .unwrap();
    let courses_bssf = Bssf::create(io, "courses", SignatureConfig::new(256, 2).unwrap()).unwrap();
    let courses_idx = db
        .register_facility(student, "courses", Box::new(courses_bssf))
        .unwrap();

    let jeff = db
        .insert_object(
            student,
            vec![
                Value::str("Jeff"),
                Value::set(vec![Value::Ref(db_theory), Value::Ref(db_systems)]),
                Value::set(vec![Value::str("Baseball"), Value::str("Fishing")]),
            ],
        )
        .unwrap();
    let ann = db
        .insert_object(
            student,
            vec![
                Value::str("Ann"),
                Value::set(vec![Value::Ref(db_theory), Value::Ref(algorithms)]),
                Value::set(vec![
                    Value::str("Baseball"),
                    Value::str("Fishing"),
                    Value::str("Tennis"),
                ]),
            ],
        )
        .unwrap();
    let bob = db
        .insert_object(
            student,
            vec![
                Value::str("Bob"),
                Value::set(vec![Value::Ref(algorithms)]),
                Value::set(vec![Value::str("Chess")]),
            ],
        )
        .unwrap();

    // ── 3. Query Q1: hobbies has-subset ("Baseball", "Fishing") ────────
    let q1 = SetQuery::has_subset(vec![
        ElementKey::from("Baseball"),
        ElementKey::from("Fishing"),
    ]);
    let r1 = db.execute_set_query(hobbies_idx, &q1).unwrap();
    println!("\nQ1  select Student where hobbies has-subset (Baseball, Fishing)");
    for oid in &r1.actual {
        let obj = db.get_object(*oid).unwrap();
        println!("  → {:?}", obj.values[0]);
    }
    assert_eq!(r1.actual, vec![jeff, ann]);
    println!(
        "  cost: {} page accesses, {} candidates, {} false drops",
        r1.io.accesses(),
        r1.report.candidates,
        r1.report.false_drops
    );

    // ── 4. Query Q2: hobbies in-subset (Baseball, Fishing, Tennis) ─────
    let q2 = SetQuery::in_subset(vec![
        ElementKey::from("Baseball"),
        ElementKey::from("Fishing"),
        ElementKey::from("Tennis"),
    ]);
    let r2 = db.execute_set_query(hobbies_idx, &q2).unwrap();
    println!("\nQ2  select Student where hobbies in-subset (Baseball, Fishing, Tennis)");
    assert_eq!(r2.actual, vec![jeff, ann]);
    for oid in &r2.actual {
        let obj = db.get_object(*oid).unwrap();
        println!("  → {:?}", obj.values[0]);
    }

    // ── 5. The §1 motivating query over object references ──────────────
    // "Find all students who take all of the lectures in the DB category":
    // step 1 collects DB-category course OIDs, step 2 is a ⊇ query.
    let db_courses = vec![ElementKey::from(db_theory), ElementKey::from(db_systems)];
    let q3 = SetQuery::has_subset(db_courses);
    let r3 = db.execute_set_query(courses_idx, &q3).unwrap();
    println!("\n§1  students taking ALL DB-category courses:");
    assert_eq!(r3.actual, vec![jeff]);
    for oid in &r3.actual {
        println!("  → {:?}", db.get_object(*oid).unwrap().values[0]);
    }

    // ── 6. The same family of queries through a PATH index ─────────────
    // The paper's nested index really lives on paths like
    // Student.courses.category: index each student by the categories of
    // the courses they reference, so "take ONLY DB lectures" is one ⊆
    // query with no join.
    let io = Arc::clone(db.disk()) as Arc<dyn PageIo>;
    let path_bssf = Bssf::create(io, "categories", SignatureConfig::new(64, 2).unwrap()).unwrap();
    let path_idx = db
        .register_path_facility(student, "courses", course, "category", Box::new(path_bssf))
        .unwrap();
    let only_db = SetQuery::in_subset(vec![ElementKey::from("DB")]);
    let r4 = db.execute_set_query(path_idx, &only_db).unwrap();
    println!("\n§1  students taking ONLY DB-category courses (path index):");
    assert_eq!(r4.actual, vec![jeff]);
    for oid in &r4.actual {
        println!("  → {:?}", db.get_object(*oid).unwrap().values[0]);
    }

    // ── 7. The paper's query language (§2) ──────────────────────────────
    let r5 = db
        .run_query(r#"select Student where hobbies has-subset ("Baseball", "Fishing")"#)
        .unwrap();
    println!(
        "\n§2  via the SQL-like surface: {} matches",
        r5.actual.len()
    );
    assert_eq!(r5.actual, vec![jeff, ann]);

    let _ = bob;
    println!("\nok.");
}
