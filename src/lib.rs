//! # setsig — signature files as set access facilities in OODBs
//!
//! A full reproduction of **Ishikawa, Kitagawa & Ohbo, "Evaluation of
//! Signature Files as Set Access Facilities in OODBs" (SIGMOD 1993)** as a
//! working Rust system: the two signature file organizations (sequential
//! and bit-sliced), the nested index baseline, the object database
//! substrate they serve, the paper's complete analytical cost model, and a
//! harness that regenerates every table and figure.
//!
//! This crate is the facade: it re-exports the workspace crates under one
//! roof.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`pagestore`] | `setsig-pagestore` | paged disk simulator with page-access accounting, buffer pool, fault injection, disk images |
//! | [`core`] | `setsig-core` | signatures, SSF, BSSF, FSSF, smart strategies, catalog checkpoints, drop resolution |
//! | [`oodb`] | `setsig-oodb` | values, schema, slotted-page object store, path indexes, the §2 query language, query executor |
//! | [`nix`] | `setsig-nix` | B-tree nested index baseline |
//! | [`costmodel`] | `setsig-costmodel` | every equation of the paper, plus the design advisor |
//! | [`workload`] | `setsig-workload` | synthetic data, query generators, mixed-operation traces |
//! | [`obs`] | `setsig-obs` | per-query tracing, metrics registry, recorders |
//! | [`service`] | `setsig-service` | sharded concurrent query service: OID-hash partitioning, worker-pool admission, live updates |
//!
//! ## Quickstart
//!
//! ```
//! use setsig::prelude::*;
//! use std::sync::Arc;
//!
//! // A database of students with a set-valued `hobbies` attribute …
//! let mut db = Database::in_memory();
//! let student = db.define_class(ClassDef::new(
//!     "Student",
//!     vec![("name", AttrType::Str), ("hobbies", AttrType::set_of(AttrType::Str))],
//! )).unwrap();
//!
//! // … indexed by a bit-sliced signature file with a small m, the paper's
//! // recommended configuration.
//! let cfg = SignatureConfig::new(256, 2).unwrap();
//! let io = Arc::clone(db.disk()) as Arc<dyn PageIo>;
//! let bssf = Bssf::create(io, "hobbies", cfg).unwrap();
//! let idx = db.register_facility(student, "hobbies", Box::new(bssf)).unwrap();
//!
//! let jeff = db.insert_object(student, vec![
//!     Value::str("Jeff"),
//!     Value::set(vec![Value::str("Baseball"), Value::str("Fishing")]),
//! ]).unwrap();
//!
//! // Q1 of the paper: hobbies has-subset ("Baseball", "Fishing").
//! let q = SetQuery::has_subset(vec![
//!     ElementKey::from("Baseball"),
//!     ElementKey::from("Fishing"),
//! ]);
//! let result = db.execute_set_query(idx, &q).unwrap();
//! assert_eq!(result.actual, vec![jeff]);
//! ```

#![forbid(unsafe_code)]

pub use setsig_core as core;
pub use setsig_costmodel as costmodel;
pub use setsig_nix as nix;
pub use setsig_obs as obs;
pub use setsig_oodb as oodb;
pub use setsig_pagestore as pagestore;
pub use setsig_service as service;
pub use setsig_workload as workload;

/// The names most programs need, in one import.
pub mod prelude {
    pub use setsig_core::{
        resolve_drops, Bssf, CandidateSet, DropReport, ElementKey, Fssf, FssfConfig, Oid,
        ScanStats, SetAccessFacility, SetPredicate, SetQuery, Signature, SignatureConfig, Ssf,
    };
    pub use setsig_costmodel::{BssfModel, FssfModel, NixModel, Params, SsfModel};
    pub use setsig_nix::Nix;
    pub use setsig_oodb::{AttrType, ClassDef, Database, Value};
    pub use setsig_pagestore::{BufferPool, CacheStats, Disk, PageIo};
    pub use setsig_service::{shard_of, QueryService, ServiceConfig, ShardRouter};
    pub use setsig_workload::{QueryGen, SetGenerator, WorkloadConfig};
}
