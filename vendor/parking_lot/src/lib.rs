//! A minimal, API-compatible stand-in for the `parking_lot` crate, backed by
//! `std::sync` primitives.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace patches `parking_lot` to this implementation. Only the
//! surface the workspace uses is provided: [`Mutex`], [`RwLock`] and their
//! guards, with `parking_lot`'s poison-free locking semantics (a poisoned
//! std lock is recovered rather than propagated, matching `parking_lot`'s
//! behaviour of not poisoning at all).

#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()` API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, never returns a poison error: a lock poisoned by
    /// a panicking holder is recovered, as `parking_lot` (which has no
    /// poisoning) would behave.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        assert_eq!(*m.lock(), 0);
    }
}
