//! A minimal, API-compatible stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `proptest` to this implementation. It provides deterministic
//! random-input property testing with the surface the workspace uses:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive`, `boxed`;
//! * strategies for integer ranges, tuples, [`strategy::Just`],
//!   [`arbitrary::any`], char-class regex strings (`"[a-z]{0,12}"`), and
//!   [`collection`]'s `vec` / `btree_set`;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], and [`prop_assert_ne!`] macros;
//! * [`test_runner::TestCaseError`] and [`test_runner::ProptestConfig`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the `Debug` rendering of its inputs and its case seed. Generation
//! is deterministic per (test name, case index), so failures reproduce
//! exactly on re-run.

#![warn(missing_docs)]

/// Deterministic test-case generation machinery.
pub mod test_runner {
    /// Run-time configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property was falsified.
        Fail(String),
        /// The input was rejected (e.g. by a filter); not a failure.
        Reject(String),
    }

    impl TestCaseError {
        /// A falsification with the given message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// An input rejection with the given message.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "assertion failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// The deterministic generator handed to strategies.
    ///
    /// SplitMix64 over a seed derived from the test name and case index:
    /// ample quality for input generation, and every case reproduces from
    /// its printed seed.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the generator for one test case.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Derives the per-case seed for `test_name` at `case`.
        pub fn case_seed(test_name: &str, case: u64) -> u64 {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        }

        /// The next 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            loop {
                let x = self.next_u64();
                let m = (x as u128) * (bound as u128);
                let lo = m as u64;
                if lo >= bound || lo >= bound.wrapping_neg() % bound {
                    return (m >> 64) as u64;
                }
            }
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// This stand-in generates plain values (no shrink trees); all
    /// combinators the workspace uses are provided as defaulted methods.
    pub trait Strategy {
        /// The type of generated values.
        type Value: std::fmt::Debug;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: std::fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy behind an `Arc`, making it cheaply
        /// cloneable.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Builds a recursive strategy: values are drawn either from
        /// `self` (the leaf strategy) or from `recurse` applied to the
        /// strategy built so far, nesting at most `depth` levels.
        /// `_desired_size` and `_expected_branch_size` are accepted for
        /// API compatibility.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                // At each level, bias toward leaves so sizes stay bounded.
                strat = Union::new_weighted(vec![(2, leaf.clone()), (1, recurse(strat).boxed())])
                    .boxed();
            }
            strat
        }
    }

    /// A cheaply cloneable, type-erased [`Strategy`].
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy(..)")
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: std::fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// A weighted choice among strategies of a common value type — the
    /// engine behind [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
                total_weight: self.total_weight,
            }
        }
    }

    impl<T: std::fmt::Debug> Union<T> {
        /// Builds the union from `(weight, strategy)` options. Panics if
        /// empty or all-zero-weighted.
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total_weight: u64 = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "Union needs at least one positive weight");
            Union {
                options,
                total_weight,
            }
        }
    }

    impl<T: std::fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (w, s) in &self.options {
                if pick < *w as u64 {
                    return s.new_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("pick < total_weight by construction")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.abs_diff(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.abs_diff(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }
}

/// `any::<T>()` — default strategies per type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical default strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Draws one value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<A>(std::marker::PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn new_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`, mirroring `proptest::arbitrary::any`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(std::marker::PhantomData)
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Mix extreme values in: plain uniform draws almost
                    // never produce the boundary cases codecs care about.
                    match rng.below(16) {
                        0 => 0 as $t,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Strategies for collections, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// A range of collection sizes. Built from `usize` (exact) or
    /// `Range<usize>` (half-open, as in real proptest).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi_exclusive - self.lo) as u64;
            self.lo + rng.below(span) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with sizes in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with sizes in `size`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` strategy, mirroring `proptest::collection::btree_set`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + std::fmt::Debug,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Duplicates don't grow the set; retry a bounded number of
            // times so a small element domain can't loop forever.
            let mut budget = 16 * (n + 1);
            while set.len() < n && budget > 0 {
                set.insert(self.element.new_value(rng));
                budget -= 1;
            }
            set
        }
    }
}

/// Char-class regex string strategies (`"[a-z0-9]{0,12}"`).
pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy behind `impl Strategy for &str`: a subset of regex
    /// supporting a literal prefix plus one `[class]{lo,hi}` /
    /// `[class]*` / `[class]+` production — the shapes used in this
    /// workspace's tests.
    #[derive(Debug, Clone)]
    pub struct RegexString {
        literal: String,
        class: Vec<char>,
        lo: usize,
        hi_inclusive: usize,
    }

    impl RegexString {
        /// Parses `pattern`, panicking on anything outside the supported
        /// subset (a wrong strategy is worse than a loud failure).
        pub fn parse(pattern: &str) -> Self {
            let mut chars = pattern.chars().peekable();
            let mut literal = String::new();
            while let Some(&c) = chars.peek() {
                if c == '[' {
                    break;
                }
                assert!(
                    !['(', ')', '|', '.', '*', '+', '?', '{'].contains(&c),
                    "unsupported regex construct {c:?} in {pattern:?}"
                );
                literal.push(c);
                chars.next();
            }
            if chars.peek().is_none() {
                return RegexString {
                    literal,
                    class: Vec::new(),
                    lo: 0,
                    hi_inclusive: 0,
                };
            }
            chars.next(); // consume '['
            let mut class = Vec::new();
            let mut prev: Option<char> = None;
            loop {
                let c = chars
                    .next()
                    .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                match c {
                    ']' => break,
                    '-' if prev.is_some() && chars.peek() != Some(&']') => {
                        let start = prev.unwrap();
                        let end = chars.next().unwrap();
                        assert!(start <= end, "bad range {start}-{end} in {pattern:?}");
                        for r in (start as u32 + 1)..=(end as u32) {
                            class.push(char::from_u32(r).unwrap());
                        }
                        prev = None;
                    }
                    c => {
                        class.push(c);
                        prev = Some(c);
                    }
                }
            }
            assert!(!class.is_empty(), "empty class in {pattern:?}");
            let (lo, hi) = match chars.next() {
                None => (1, 1),
                Some('*') => (0, 8),
                Some('+') => (1, 8),
                Some('{') => {
                    let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                    match spec.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse().expect("bad repeat lower bound"),
                            b.trim().parse().expect("bad repeat upper bound"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("bad repeat count");
                            (n, n)
                        }
                    }
                }
                Some(c) => panic!("unsupported trailing {c:?} in {pattern:?}"),
            };
            assert!(
                chars.next().is_none(),
                "unsupported trailing content after repetition in {pattern:?}"
            );
            RegexString {
                literal,
                class,
                lo,
                hi_inclusive: hi,
            }
        }
    }

    impl Strategy for RegexString {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            let mut out = self.literal.clone();
            if !self.class.is_empty() {
                let n = self.lo + rng.below((self.hi_inclusive - self.lo + 1) as u64) as usize;
                for _ in 0..n {
                    out.push(self.class[rng.below(self.class.len() as u64) as usize]);
                }
            }
            out
        }
    }

    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            RegexString::parse(self).new_value(rng)
        }
    }
}

/// The glob import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property, returning
/// [`TestCaseError::Fail`](test_runner::TestCaseError) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} == {} failed: {:?} vs {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} ({:?} vs {:?})",
            format!($($fmt)*), l, r
        );
    }};
}

/// Asserts inequality inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{} != {} failed: both {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{} (both {:?})", format!($($fmt)*), l);
    }};
}

/// Weighted or unweighted choice among strategies of one value type,
/// mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]`
/// running `ProptestConfig::cases` deterministic cases. The body may use
/// `?` and the `prop_assert*` family; a failing case panics with the
/// inputs' `Debug` rendering and the case seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases as u64 {
                let seed = $crate::test_runner::TestRng::case_seed(test_name, case);
                let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                let values = (
                    $($crate::strategy::Strategy::new_value(&{ $strat }, &mut rng),)+
                );
                let rendered = format!("{:?}", values);
                let ($($arg,)+) = values;
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::std::result::Result::Err(e) => panic!(
                        "proptest {test_name} failed at case {case} (seed {seed:#x}): {e}\n\
                         inputs ({inputs}): {rendered}",
                        inputs = stringify!($($arg),+),
                    ),
                }
            }
        }
        $crate::__proptest_impl!(($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn ranges_tuples_and_collections_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        let strat = crate::collection::vec((0u64..50, 1usize..4), 2..10);
        for _ in 0..200 {
            let v = strat.new_value(&mut rng);
            assert!((2..10).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 50 && (1..4).contains(&b));
            }
        }
    }

    #[test]
    fn btree_set_respects_min_size_when_feasible() {
        let mut rng = TestRng::from_seed(2);
        let strat = crate::collection::btree_set(0u64..50, 1..6);
        for _ in 0..200 {
            let s: BTreeSet<u64> = strat.new_value(&mut rng);
            assert!(!s.is_empty() && s.len() < 6);
        }
    }

    #[test]
    fn union_weights_bias_choice() {
        let strat = prop_oneof![4 => 0u32..1, 1 => 1u32..2];
        let mut rng = TestRng::from_seed(3);
        let zeros = (0..1000).filter(|_| strat.new_value(&mut rng) == 0).count();
        assert!(zeros > 650 && zeros < 950, "zeros = {zeros}");
    }

    #[test]
    fn regex_subset_strings() {
        let mut rng = TestRng::from_seed(4);
        let strat = "[a-c0-1 ]{0,12}";
        for _ in 0..200 {
            let s = Strategy::new_value(&strat, &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| "abc01 ".contains(c)), "{s:?}");
        }
        let lit = Strategy::new_value(&"abc", &mut rng);
        assert_eq!(lit, "abc");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum V {
            Leaf(i64),
            Node(Vec<V>),
        }
        fn depth(v: &V) -> usize {
            match v {
                V::Leaf(_) => 1,
                V::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = any::<i64>()
            .prop_map(V::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(V::Node)
            });
        let mut rng = TestRng::from_seed(5);
        for _ in 0..100 {
            assert!(depth(&strat.new_value(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_and_checks(
            mut xs in crate::collection::vec(0u64..100, 1..10),
            y in any::<bool>(),
        ) {
            xs.push(if y { 1 } else { 0 });
            prop_assert!(!xs.is_empty());
            prop_assert_eq!(xs.last().copied().unwrap() <= 100, true);
            prop_assert_ne!(xs.len(), 0);
            helper(&xs)?;
        }
    }

    fn helper(xs: &[u64]) -> Result<(), TestCaseError> {
        prop_assert!(xs.iter().all(|&x| x <= 100));
        Ok(())
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x = {}", x);
            }
        }
        inner();
    }
}
