//! A minimal, API-compatible stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `criterion` to this harness. It implements the surface the
//! bench crate uses — [`Criterion::benchmark_group`], [`BenchmarkGroup`]
//! (`sample_size`, `bench_function`, `bench_with_input`, `finish`),
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with plain
//! wall-clock timing and a text report instead of criterion's statistics.
//!
//! Behaviour knobs (environment variables):
//! * `BENCH_SAMPLES` — override every group's sample count.
//! * `BENCH_MIN_ITERS` — minimum timed iterations per sample (default 1).
//! * `BENCH_JSON` — path to write a machine-readable summary of every
//!   benchmark run by the process (one JSON object with a `benchmarks`
//!   array of `{group, id, mean_ns, best_ns, samples}` entries), for
//!   perf-trajectory tracking in CI.

#![warn(missing_docs)]

use std::hint;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One benchmark's timing summary, collected for the `BENCH_JSON` report.
#[derive(Debug, Clone)]
struct SummaryEntry {
    group: String,
    id: String,
    mean_ns: u128,
    best_ns: u128,
    samples: u64,
}

/// Process-wide collector behind the `BENCH_JSON` report. Plain
/// `std::sync::Mutex`; bench processes are effectively single-threaded
/// at reporting points, so contention (and poisoning) cannot occur.
fn collector() -> &'static Mutex<Vec<SummaryEntry>> {
    static COLLECTOR: OnceLock<Mutex<Vec<SummaryEntry>>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Vec::new()))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes the collected summary to `path` as JSON. Errors are reported
/// to stderr, never panicked on — a failed report must not fail the
/// bench run itself.
fn write_summary(path: &str) {
    let entries = match collector().lock() {
        Ok(g) => g.clone(),
        Err(_) => return,
    };
    let mut body = String::from("{\n  \"benchmarks\": [\n");
    for (i, e) in entries.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"group\": \"{}\", \"id\": \"{}\", \"mean_ns\": {}, \"best_ns\": {}, \"samples\": {}}}{}\n",
            json_escape(&e.group),
            json_escape(&e.id),
            e.mean_ns,
            e.best_ns,
            e.samples,
            if i + 1 == entries.len() { "" } else { "," },
        ));
    }
    body.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("criterion harness: could not write BENCH_JSON to {path}: {e}");
    }
}

/// Opaque identifier for a parameterised benchmark, rendered as
/// `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// Creates an id for `function_name` at `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            rendered: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            rendered: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// An opaque black box preventing the optimiser from deleting a value's
/// computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Times closures; handed to benchmark bodies.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (timed repetitions) per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n as u64;
        self
    }

    /// Sets the target measurement time. Accepted for API compatibility;
    /// this harness is sample-count driven.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnMut(&mut Bencher)) {
        let samples = env_u64("BENCH_SAMPLES").unwrap_or(self.samples).max(1);
        let min_iters = env_u64("BENCH_MIN_ITERS").unwrap_or(1).max(1);
        let mut f = f;
        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        let mut timed: u64 = 0;
        for _ in 0..samples {
            let mut b = Bencher {
                iters: min_iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed > Duration::ZERO || timed == 0 {
                let per_iter = b.elapsed / min_iters as u32;
                best = best.min(per_iter);
                total += per_iter;
                timed += 1;
            }
        }
        let mean = total / timed.max(1) as u32;
        println!(
            "{}/{:<40} mean {:>12?}  best {:>12?}  ({} samples)",
            self.name, id, mean, best, timed
        );
        if let Ok(mut entries) = collector().lock() {
            entries.push(SummaryEntry {
                group: self.name.clone(),
                id: id.to_string(),
                mean_ns: mean.as_nanos(),
                best_ns: best.as_nanos(),
                samples: timed,
            });
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        self.run_one(&id.to_string(), f);
        self
    }

    /// Benchmarks `f` with a borrowed `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark manager: entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_samples: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Begins a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }

    /// Parses (and ignores) harness CLI arguments for compatibility with
    /// `cargo bench` passing `--bench`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs final reporting: when `BENCH_JSON` names a path, writes the
    /// process-wide summary of every benchmark timed so far. Called once
    /// per `criterion_group!`; each call rewrites the file with the
    /// cumulative collector, so the last group's call reports them all.
    pub fn final_summary(&mut self) {
        if let Ok(path) = std::env::var("BENCH_JSON") {
            if !path.trim().is_empty() {
                write_summary(&path);
            }
        }
    }
}

/// Declares a benchmark group runner function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (`--bench`,
            // test filters); a plain binary must tolerate them.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test" || a == "--list") {
                // `cargo test` probes bench targets; succeed without running.
                if args.iter().any(|a| a == "--list") {
                    println!("0 benchmarks");
                }
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        let q = 21u64;
        group.bench_with_input(BenchmarkId::new("double", 21), &q, |b, q| b.iter(|| q * 2));
        group.finish();
        assert!(calls >= 3);
    }

    #[test]
    fn json_summary_reports_every_timed_benchmark() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("jsonsmoke");
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
        let path = std::env::temp_dir().join("criterion_stub_bench_json_test.json");
        write_summary(path.to_str().unwrap());
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"group\": \"jsonsmoke\""), "{body}");
        assert!(body.contains("\"id\": \"noop\""), "{body}");
        assert!(body.contains("\"mean_ns\""), "{body}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("bssf", 10).to_string(), "bssf/10");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
