//! A minimal, API-compatible stand-in for the `rand` crate (0.8 surface).
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` to this implementation. It provides exactly the surface
//! the workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and [`Rng`] with `gen_range` over integer ranges and `gen` for `u64` /
//! `u32` / `f64` / `bool`.
//!
//! `StdRng` here is xoshiro256** seeded via SplitMix64 — a deterministic,
//! high-quality generator. Streams differ from the real `rand::StdRng`
//! (ChaCha12), which is fine: the workspace only relies on determinism
//! per seed, never on specific stream values.

#![warn(missing_docs)]

/// The core of a random number generator: a source of `u64` words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit value (upper half of the 64-bit word).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen`] can produce (the subset of `rand`'s `Standard`
/// distribution the workspace needs).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, bound)` without modulo bias (Lemire-style
/// rejection on the widening multiply).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i32 => u32, i64 => u64);

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let a: u64 = rng.gen_range(0..13_000u64);
            assert!(a < 13_000);
            let b: u32 = rng.gen_range(5..=15u32);
            assert!((5..=15).contains(&b));
            let c: usize = rng.gen_range(3..4usize);
            assert_eq!(c, 3);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 1_000, "{counts:?}");
        }
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw(rng: &mut impl Rng) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 100);
    }
}
