//! Failure injection: every facility propagates disk errors as `Err`,
//! never panics, and recovers once the fault clears.

use setsig::nix::Nix;
use setsig::prelude::*;
use std::sync::Arc;

fn setup() -> (Arc<Disk>, Ssf, Bssf, Nix) {
    let disk = Arc::new(Disk::new());
    let io = || Arc::clone(&disk) as Arc<dyn PageIo>;
    let mut ssf = Ssf::create(io(), "s", SignatureConfig::new(64, 2).unwrap()).unwrap();
    let mut bssf = Bssf::create(io(), "b", SignatureConfig::new(64, 2).unwrap()).unwrap();
    let mut nix = Nix::on_io(io(), "n");
    for i in 0..200u64 {
        let set: Vec<ElementKey> = (0..4).map(|j| ElementKey::from(i * 7 + j)).collect();
        ssf.insert(Oid::new(i), &set).unwrap();
        bssf.insert(Oid::new(i), &set).unwrap();
        nix.insert(Oid::new(i), &set).unwrap();
    }
    (disk, ssf, bssf, nix)
}

#[test]
fn queries_fail_cleanly_mid_read_and_recover() {
    let (disk, ssf, bssf, nix) = setup();
    let q = SetQuery::has_subset(vec![
        ElementKey::from(7u64 * 7),
        ElementKey::from(7u64 * 7 + 1),
    ]);

    // Fail immediately: every facility reports an error, no panic.
    disk.inject_fault_after(0);
    assert!(ssf.candidates(&q).is_err());
    assert!(bssf.candidates(&q).is_err());
    assert!(nix.candidates(&q).is_err());

    // Fail mid-operation: still an error.
    disk.inject_fault_after(1);
    assert!(ssf.candidates(&q).is_err());

    // Clear: everything works again and answers correctly.
    disk.clear_fault();
    let a = ssf.candidates(&q).unwrap();
    let b = bssf.candidates(&q).unwrap();
    let c = nix.candidates(&q).unwrap();
    assert!(a.oids.contains(&Oid::new(7)));
    assert!(b.oids.contains(&Oid::new(7)));
    assert!(c.oids.contains(&Oid::new(7)));
}

#[test]
fn inserts_fail_cleanly() {
    let (disk, mut ssf, mut bssf, mut nix) = setup();
    let set: Vec<ElementKey> = (0..4).map(|j| ElementKey::from(9000 + j)).collect();
    disk.inject_fault_after(0);
    assert!(ssf.insert(Oid::new(900), &set).is_err());
    assert!(bssf.insert(Oid::new(900), &set).is_err());
    assert!(nix.insert(Oid::new(900), &set).is_err());
    disk.clear_fault();
    // The nix tree may have a torn multi-element insert (one key in, the
    // rest not) — the tree itself must still be structurally sound.
    nix.tree().check_integrity().unwrap();
}

#[test]
fn database_layer_propagates_faults() {
    let mut db = Database::in_memory();
    let class = db
        .define_class(ClassDef::new(
            "C",
            vec![("xs", AttrType::set_of(AttrType::Int))],
        ))
        .unwrap();
    let io = Arc::clone(db.disk()) as Arc<dyn PageIo>;
    let bssf = Bssf::create(io, "x", SignatureConfig::new(64, 2).unwrap()).unwrap();
    let idx = db.register_facility(class, "xs", Box::new(bssf)).unwrap();
    for i in 0..50i64 {
        db.insert_object(
            class,
            vec![Value::set(vec![Value::Int(i), Value::Int(i + 1)])],
        )
        .unwrap();
    }
    let q = SetQuery::has_subset(vec![ElementKey::from(25u64)]);
    // Fault during drop resolution (object fetches happen after the slice
    // reads): the executor surfaces the error.
    db.disk().inject_fault_after(3);
    assert!(db.execute_set_query(idx, &q).is_err());
    db.disk().clear_fault();
    let r = db.execute_set_query(idx, &q).unwrap();
    assert!(!r.actual.is_empty());
}

#[test]
fn persistence_load_failures_are_errors() {
    // Saving with a fault active fails without corrupting the source.
    let (disk, _ssf, _bssf, _nix) = setup();
    let dir = std::env::temp_dir().join(format!("setsig-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("img.bin");
    disk.save_to(&path).unwrap();
    // A truncated image errors on load.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..100]).unwrap();
    assert!(Disk::load_from(&path).is_err());
    std::fs::remove_dir_all(&dir).ok();
}
