//! Cross-crate integration: the full OODB + all four facilities through
//! inserts, queries, deletes, and every predicate.

use setsig::nix::Nix;
use setsig::prelude::*;
use std::sync::Arc;

fn hobby_db() -> (Database, setsig::oodb::ClassId) {
    let mut db = Database::in_memory();
    let student = db
        .define_class(ClassDef::new(
            "Student",
            vec![
                ("name", AttrType::Str),
                ("hobbies", AttrType::set_of(AttrType::Str)),
            ],
        ))
        .unwrap();
    (db, student)
}

fn register_all(db: &mut Database, class: setsig::oodb::ClassId) -> [usize; 4] {
    let io = || Arc::clone(db.disk()) as Arc<dyn PageIo>;
    let ssf = Ssf::create(io(), "h", SignatureConfig::new(128, 2).unwrap()).unwrap();
    let bssf = Bssf::create(io(), "h", SignatureConfig::new(128, 2).unwrap()).unwrap();
    let fssf = Fssf::create(io(), "h", FssfConfig::new(128, 16, 2).unwrap()).unwrap();
    let nix = Nix::on_io(io(), "h");
    [
        db.register_facility(class, "hobbies", Box::new(ssf))
            .unwrap(),
        db.register_facility(class, "hobbies", Box::new(bssf))
            .unwrap(),
        db.register_facility(class, "hobbies", Box::new(fssf))
            .unwrap(),
        db.register_facility(class, "hobbies", Box::new(nix))
            .unwrap(),
    ]
}

fn insert_student(
    db: &mut Database,
    class: setsig::oodb::ClassId,
    name: &str,
    hobbies: &[&str],
) -> Oid {
    db.insert_object(
        class,
        vec![
            Value::str(name),
            Value::set(hobbies.iter().map(|h| Value::str(h)).collect()),
        ],
    )
    .unwrap()
}

#[test]
fn all_predicates_agree_across_facilities_and_scan() {
    let (mut db, student) = hobby_db();
    let facilities = register_all(&mut db, student);

    let data: &[(&str, &[&str])] = &[
        ("Jeff", &["Baseball", "Fishing"]),
        ("Ann", &["Baseball", "Fishing", "Tennis"]),
        ("Bob", &["Chess"]),
        ("Carol", &["Baseball"]),
        ("Dan", &["Fishing", "Golf", "Chess"]),
        ("Eve", &["Tennis", "Baseball"]),
    ];
    for (name, hobbies) in data {
        insert_student(&mut db, student, name, hobbies);
    }

    let queries = vec![
        SetQuery::has_subset(vec![
            ElementKey::from("Baseball"),
            ElementKey::from("Fishing"),
        ]),
        SetQuery::has_subset(vec![ElementKey::from("Chess")]),
        SetQuery::in_subset(vec![
            ElementKey::from("Baseball"),
            ElementKey::from("Fishing"),
            ElementKey::from("Tennis"),
        ]),
        SetQuery::equals(vec![
            ElementKey::from("Baseball"),
            ElementKey::from("Fishing"),
        ]),
        SetQuery::overlaps(vec![ElementKey::from("Golf"), ElementKey::from("Tennis")]),
        SetQuery::contains(ElementKey::from("Fishing")),
        // Degenerate: empty ⊆ query matches only empty sets (none here).
        SetQuery::in_subset(vec![]),
    ];
    for q in &queries {
        let scan = db.scan_set_query(student, "hobbies", q).unwrap();
        for &idx in &facilities {
            let r = db.execute_set_query(idx, q).unwrap();
            assert_eq!(
                r.actual,
                scan.actual,
                "facility {} disagrees with scan on {}",
                db.facility(idx).unwrap().name(),
                q.predicate
            );
        }
    }
}

#[test]
fn deletes_propagate_everywhere() {
    let (mut db, student) = hobby_db();
    let facilities = register_all(&mut db, student);
    let jeff = insert_student(&mut db, student, "Jeff", &["Baseball", "Fishing"]);
    let ann = insert_student(&mut db, student, "Ann", &["Baseball", "Fishing"]);

    db.delete_object(jeff).unwrap();

    let q = SetQuery::has_subset(vec![ElementKey::from("Baseball")]);
    for idx in facilities {
        let r = db.execute_set_query(idx, &q).unwrap();
        assert_eq!(r.actual, vec![ann], "{}", db.facility(idx).unwrap().name());
    }
    assert!(db.get_object(jeff).is_err());
    // Deleting again fails cleanly.
    assert!(db.delete_object(jeff).is_err());
}

#[test]
fn facility_costs_scale_as_the_paper_predicts() {
    // A mid-sized instance; checks cost *ordering*, not absolutes:
    // ⊆ queries must be far cheaper on BSSF than on NIX, and every
    // facility must beat the full scan on ⊇.
    let (mut db, student) = hobby_db();
    let facilities = register_all(&mut db, student);
    let hobby = |i: u64| format!("hobby-{}", i % 40);
    for i in 0..2000u64 {
        let hobbies: Vec<String> = (0..4).map(|j| hobby(i * 7 + j)).collect();
        let refs: Vec<&str> = hobbies.iter().map(String::as_str).collect();
        insert_student(&mut db, student, &format!("s{i}"), &refs);
    }

    let q_sup = SetQuery::has_subset(vec![ElementKey::from(hobby(3).as_str())]);
    let scan = db.scan_set_query(student, "hobbies", &q_sup).unwrap();
    for &idx in &facilities {
        let r = db.execute_set_query(idx, &q_sup).unwrap();
        assert_eq!(r.actual, scan.actual);
        assert!(
            r.io.accesses() < scan.io.accesses() / 2,
            "{} cost {:?} vs scan {:?}",
            db.facility(idx).unwrap().name(),
            r.io,
            scan.io
        );
    }

    let q_sub = SetQuery::in_subset(
        (0..10)
            .map(|i| ElementKey::from(hobby(i).as_str()))
            .collect(),
    );
    let bssf = db.execute_set_query(facilities[1], &q_sub).unwrap();
    let nix = db.execute_set_query(facilities[3], &q_sub).unwrap();
    assert_eq!(bssf.actual, nix.actual);
    assert!(
        bssf.io.accesses() < nix.io.accesses(),
        "BSSF {:?} should beat NIX {:?} on T ⊆ Q",
        bssf.io,
        nix.io
    );
}

#[test]
fn mixed_classes_do_not_leak_between_facilities() {
    let mut db = Database::in_memory();
    let student = db
        .define_class(ClassDef::new(
            "Student",
            vec![
                ("name", AttrType::Str),
                ("hobbies", AttrType::set_of(AttrType::Str)),
            ],
        ))
        .unwrap();
    let club = db
        .define_class(ClassDef::new(
            "Club",
            vec![
                ("name", AttrType::Str),
                ("hobbies", AttrType::set_of(AttrType::Str)),
            ],
        ))
        .unwrap();
    let io = Arc::clone(db.disk()) as Arc<dyn PageIo>;
    let bssf = Bssf::create(io, "student-hobbies", SignatureConfig::new(128, 2).unwrap()).unwrap();
    let idx = db
        .register_facility(student, "hobbies", Box::new(bssf))
        .unwrap();

    let s = insert_student(&mut db, student, "Jeff", &["Baseball"]);
    // Same attribute name on a different, unindexed class.
    db.insert_object(
        club,
        vec![
            Value::str("Baseball Club"),
            Value::set(vec![Value::str("Baseball")]),
        ],
    )
    .unwrap();

    let q = SetQuery::has_subset(vec![ElementKey::from("Baseball")]);
    let r = db.execute_set_query(idx, &q).unwrap();
    assert_eq!(r.actual, vec![s], "club object must not appear");
}

#[test]
fn empty_database_answers_empty() {
    let (mut db, student) = hobby_db();
    let facilities = register_all(&mut db, student);
    let q = SetQuery::has_subset(vec![ElementKey::from("Baseball")]);
    for idx in facilities {
        let r = db.execute_set_query(idx, &q).unwrap();
        assert!(r.actual.is_empty());
        assert_eq!(r.report.candidates, 0);
    }
}
