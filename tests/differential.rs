//! Differential test harness: on random workloads, every facility's
//! filtering stage is checked against ground truth computed directly from
//! the sets, and the parallel BSSF/SSF engines are checked against their
//! serial twins — identical candidate sets AND identical logical page
//! counts (the tentpole invariant).

use proptest::prelude::*;
use setsig::nix::Nix;
use setsig::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Ground truth for `T ⊇ Q`: positions whose set contains every query
/// element.
fn truth_superset(sets: &[Vec<u64>], q: &[u64]) -> BTreeSet<u64> {
    sets.iter()
        .enumerate()
        .filter(|(_, s)| q.iter().all(|e| s.contains(e)))
        .map(|(i, _)| i as u64)
        .collect()
}

/// Ground truth for `T ⊆ Q`: positions whose set is contained in the query.
fn truth_subset(sets: &[Vec<u64>], q: &[u64]) -> BTreeSet<u64> {
    sets.iter()
        .enumerate()
        .filter(|(_, s)| s.iter().all(|e| q.contains(e)))
        .map(|(i, _)| i as u64)
        .collect()
}

fn keys(elems: &[u64]) -> Vec<ElementKey> {
    elems.iter().map(|&e| ElementKey::from(e)).collect()
}

fn oid_set(c: &CandidateSet) -> BTreeSet<u64> {
    c.oids.iter().map(|o| o.raw()).collect()
}

fn run_workload(sets: &[Vec<u64>], queries: &[(bool, Vec<u64>)]) -> Result<(), TestCaseError> {
    let cfg = || SignatureConfig::new(64, 2).unwrap();
    let build_io = || {
        let disk = Arc::new(Disk::new());
        Arc::clone(&disk) as Arc<dyn PageIo>
    };
    let items: Vec<(Oid, Vec<ElementKey>)> = sets
        .iter()
        .enumerate()
        .map(|(i, s)| (Oid::new(i as u64), keys(s)))
        .collect();

    let mut ssf = Ssf::create(build_io(), "d", cfg()).unwrap();
    let mut ssf_par = Ssf::create(build_io(), "d", cfg()).unwrap();
    ssf_par.set_parallelism(4);
    let mut nix = Nix::on_io(build_io(), "d");
    for (oid, set) in &items {
        ssf.insert(*oid, set).unwrap();
        ssf_par.insert(*oid, set).unwrap();
        nix.insert(*oid, set).unwrap();
    }
    let mut bssf = Bssf::create(build_io(), "d", cfg()).unwrap();
    let mut bssf_par = Bssf::create(build_io(), "d", cfg()).unwrap();
    bssf_par.set_parallelism(4);
    bssf.bulk_load(&items).unwrap();
    bssf_par.bulk_load(&items).unwrap();

    for (is_superset, elems) in queries {
        let q = if *is_superset {
            SetQuery::has_subset(keys(elems))
        } else {
            SetQuery::in_subset(keys(elems))
        };
        let truth = if *is_superset {
            truth_superset(sets, elems)
        } else {
            truth_subset(sets, elems)
        };

        let (s, s_stats) = ssf.candidates_with_stats(&q).unwrap();
        let (b, b_stats) = bssf.candidates_with_stats(&q).unwrap();
        let n = nix.candidates(&q).unwrap();

        // No false negatives, ever: the signature filters must drop a
        // superset of the truth.
        for facility in [&s, &b] {
            let got = oid_set(facility);
            prop_assert!(
                truth.is_subset(&got),
                "false negative: predicate ⊇={} query {:?} truth {:?} got {:?}",
                is_superset,
                elems,
                truth,
                got
            );
        }
        if *is_superset {
            // NIX answers T ⊇ Q exactly via OID-list intersection.
            prop_assert!(n.exact);
            prop_assert_eq!(oid_set(&n), truth.clone(), "NIX must be exact on ⊇");
        } else {
            prop_assert!(truth.is_subset(&oid_set(&n)), "NIX ⊆ must not lose answers");
        }

        // The parallel engines must be *identical* to their serial twins:
        // same candidates, same logical page charge.
        let (sp, sp_stats) = ssf_par.candidates_with_stats(&q).unwrap();
        prop_assert_eq!(&s, &sp, "parallel SSF diverged");
        prop_assert_eq!(
            s_stats.expect("ssf reports stats").logical_pages,
            sp_stats.expect("ssf reports stats").logical_pages
        );
        let (bp, bp_stats) = bssf_par.candidates_with_stats(&q).unwrap();
        prop_assert_eq!(&b, &bp, "parallel BSSF diverged");
        prop_assert_eq!(
            b_stats.expect("bssf reports stats").logical_pages,
            bp_stats.expect("bssf reports stats").logical_pages,
            "parallel BSSF charged different logical pages"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn facilities_agree_on_random_workloads(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0u64..50, 1..7)
                .prop_map(|s| s.into_iter().collect::<Vec<u64>>()),
            1..40,
        ),
        queries in proptest::collection::vec(
            (any::<bool>(), proptest::collection::btree_set(0u64..50, 1..7)
                .prop_map(|s| s.into_iter().collect::<Vec<u64>>())),
            1..5,
        ),
    ) {
        run_workload(&sets, &queries)?;
    }
}
