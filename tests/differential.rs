//! Differential test harness: on random workloads, every facility's
//! filtering stage is checked against ground truth computed directly from
//! the sets, and the parallel BSSF/SSF engines are checked against their
//! serial twins — identical candidate sets AND identical logical page
//! counts (the tentpole invariant).

use proptest::prelude::*;
use setsig::nix::Nix;
use setsig::prelude::*;
use setsig::service::{shard_of, ShardRouter};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Ground truth for `T ⊇ Q`: positions whose set contains every query
/// element.
fn truth_superset(sets: &[Vec<u64>], q: &[u64]) -> BTreeSet<u64> {
    sets.iter()
        .enumerate()
        .filter(|(_, s)| q.iter().all(|e| s.contains(e)))
        .map(|(i, _)| i as u64)
        .collect()
}

/// Ground truth for `T ⊆ Q`: positions whose set is contained in the query.
fn truth_subset(sets: &[Vec<u64>], q: &[u64]) -> BTreeSet<u64> {
    sets.iter()
        .enumerate()
        .filter(|(_, s)| s.iter().all(|e| q.contains(e)))
        .map(|(i, _)| i as u64)
        .collect()
}

fn keys(elems: &[u64]) -> Vec<ElementKey> {
    elems.iter().map(|&e| ElementKey::from(e)).collect()
}

fn oid_set(c: &CandidateSet) -> BTreeSet<u64> {
    c.oids.iter().map(|o| o.raw()).collect()
}

fn run_workload(sets: &[Vec<u64>], queries: &[(bool, Vec<u64>)]) -> Result<(), TestCaseError> {
    let cfg = || SignatureConfig::new(64, 2).unwrap();
    let build_io = || {
        let disk = Arc::new(Disk::new());
        Arc::clone(&disk) as Arc<dyn PageIo>
    };
    let items: Vec<(Oid, Vec<ElementKey>)> = sets
        .iter()
        .enumerate()
        .map(|(i, s)| (Oid::new(i as u64), keys(s)))
        .collect();

    let mut ssf = Ssf::create(build_io(), "d", cfg()).unwrap();
    let mut ssf_par = Ssf::create(build_io(), "d", cfg()).unwrap();
    ssf_par.set_parallelism(4);
    let mut nix = Nix::on_io(build_io(), "d");
    for (oid, set) in &items {
        ssf.insert(*oid, set).unwrap();
        ssf_par.insert(*oid, set).unwrap();
        nix.insert(*oid, set).unwrap();
    }
    let mut bssf = Bssf::create(build_io(), "d", cfg()).unwrap();
    let mut bssf_par = Bssf::create(build_io(), "d", cfg()).unwrap();
    bssf_par.set_parallelism(4);
    bssf.bulk_load(&items).unwrap();
    bssf_par.bulk_load(&items).unwrap();

    for (is_superset, elems) in queries {
        let q = if *is_superset {
            SetQuery::has_subset(keys(elems))
        } else {
            SetQuery::in_subset(keys(elems))
        };
        let truth = if *is_superset {
            truth_superset(sets, elems)
        } else {
            truth_subset(sets, elems)
        };

        let (s, s_stats) = ssf.candidates_with_stats(&q).unwrap();
        let (b, b_stats) = bssf.candidates_with_stats(&q).unwrap();
        let n = nix.candidates(&q).unwrap();

        // No false negatives, ever: the signature filters must drop a
        // superset of the truth.
        for facility in [&s, &b] {
            let got = oid_set(facility);
            prop_assert!(
                truth.is_subset(&got),
                "false negative: predicate ⊇={} query {:?} truth {:?} got {:?}",
                is_superset,
                elems,
                truth,
                got
            );
        }
        if *is_superset {
            // NIX answers T ⊇ Q exactly via OID-list intersection.
            prop_assert!(n.exact);
            prop_assert_eq!(oid_set(&n), truth.clone(), "NIX must be exact on ⊇");
        } else {
            prop_assert!(truth.is_subset(&oid_set(&n)), "NIX ⊆ must not lose answers");
        }

        // The parallel engines must be *identical* to their serial twins:
        // same candidates, same logical page charge.
        let (sp, sp_stats) = ssf_par.candidates_with_stats(&q).unwrap();
        prop_assert_eq!(&s, &sp, "parallel SSF diverged");
        prop_assert_eq!(
            s_stats.expect("ssf reports stats").logical_pages,
            sp_stats.expect("ssf reports stats").logical_pages
        );
        let (bp, bp_stats) = bssf_par.candidates_with_stats(&q).unwrap();
        prop_assert_eq!(&b, &bp, "parallel BSSF diverged");
        prop_assert_eq!(
            b_stats.expect("bssf reports stats").logical_pages,
            bp_stats.expect("bssf reports stats").logical_pages,
            "parallel BSSF charged different logical pages"
        );
    }
    Ok(())
}

/// Sharded-service invariants against the unsharded facility: on every
/// workload and every shard count, (1) each OID lands on exactly one
/// shard, (2) the merged candidate set is *identical* to the flat BSSF's
/// (no OID duplicated or dropped across the shard boundary), and (3) the
/// merged [`ScanStats`] are the exact sum of the per-shard charges — with
/// one shard, byte-identical to the flat facility's stats.
fn run_sharded_workload(
    sets: &[Vec<u64>],
    queries: &[(bool, Vec<u64>)],
) -> Result<(), TestCaseError> {
    let cfg = || SignatureConfig::new(64, 2).unwrap();
    let items: Vec<(Oid, Vec<ElementKey>)> = sets
        .iter()
        .enumerate()
        .map(|(i, s)| (Oid::new(i as u64), keys(s)))
        .collect();
    let built_queries: Vec<SetQuery> = queries
        .iter()
        .map(|(is_superset, elems)| {
            if *is_superset {
                SetQuery::has_subset(keys(elems))
            } else {
                SetQuery::in_subset(keys(elems))
            }
        })
        .collect();

    let mut flat = Bssf::create(Arc::new(Disk::new()) as Arc<dyn PageIo>, "flat", cfg()).unwrap();
    flat.bulk_load(&items).unwrap();
    let flat_answers: Vec<(CandidateSet, ScanStats)> = built_queries
        .iter()
        .map(|q| {
            let (set, stats) = flat.candidates_with_stats(q).unwrap();
            (set, stats.expect("bssf reports stats"))
        })
        .collect();

    for shards in [1usize, 2, 7, 16] {
        // (1) The hash is total: each OID goes to exactly one in-range
        // shard, so the partition is a true partition.
        let mut partitions: Vec<Vec<(Oid, Vec<ElementKey>)>> = vec![Vec::new(); shards];
        for (oid, set) in &items {
            let s = shard_of(*oid, shards);
            prop_assert!(s < shards, "oid {oid} routed out of range");
            partitions[s].push((*oid, set.clone()));
        }
        let total: usize = partitions.iter().map(Vec::len).sum();
        prop_assert_eq!(total, items.len(), "partition lost or duplicated an OID");

        let disk = Arc::new(Disk::new());
        let facilities: Vec<Bssf> = partitions
            .iter()
            .enumerate()
            .map(|(i, part)| {
                let mut b = Bssf::create(
                    Arc::clone(&disk) as Arc<dyn PageIo>,
                    &format!("shard{i}"),
                    cfg(),
                )
                .unwrap();
                b.bulk_load(part).unwrap();
                b
            })
            .collect();
        let router = ShardRouter::new(facilities).unwrap();

        for (q, (flat_set, flat_stats)) in built_queries.iter().zip(&flat_answers) {
            // Per-shard parts, summed by hand — the conservation oracle.
            let mut by_hand = ScanStats::default();
            for shard in 0..shards {
                let (_, part_stats) = router.query_shard(shard, q).unwrap();
                let part_stats = part_stats.expect("bssf reports stats");
                by_hand.logical_pages += part_stats.logical_pages;
                by_hand.physical_pages += part_stats.physical_pages;
            }
            let (merged, merged_stats) = router.query_serial(q).unwrap();
            // (2) Candidate identity: a BSSF match depends only on the
            // object's signature, never on which file holds it.
            prop_assert_eq!(
                &merged,
                flat_set,
                "sharded candidates diverged at {} shards",
                shards
            );
            for w in merged.oids.windows(2) {
                prop_assert!(w[0] < w[1], "merged candidates duplicated {}", w[0]);
            }
            // (3) Conservation: merged charge == sum of shard charges.
            let merged_stats = merged_stats.expect("merge keeps stats when all shards report");
            prop_assert_eq!(merged_stats, by_hand, "merge altered the page charge");
            if shards == 1 {
                prop_assert_eq!(
                    merged_stats,
                    *flat_stats,
                    "one shard must be page-identical to the flat facility"
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn facilities_agree_on_random_workloads(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0u64..50, 1..7)
                .prop_map(|s| s.into_iter().collect::<Vec<u64>>()),
            1..40,
        ),
        queries in proptest::collection::vec(
            (any::<bool>(), proptest::collection::btree_set(0u64..50, 1..7)
                .prop_map(|s| s.into_iter().collect::<Vec<u64>>())),
            1..5,
        ),
    ) {
        run_workload(&sets, &queries)?;
    }

    #[test]
    fn sharded_routing_and_merge_agree_with_the_flat_facility(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0u64..50, 1..7)
                .prop_map(|s| s.into_iter().collect::<Vec<u64>>()),
            1..40,
        ),
        queries in proptest::collection::vec(
            (any::<bool>(), proptest::collection::btree_set(0u64..50, 1..7)
                .prop_map(|s| s.into_iter().collect::<Vec<u64>>())),
            1..5,
        ),
    ) {
        run_sharded_workload(&sets, &queries)?;
    }
}
