//! Serial/parallel engine parity across the paper's figure workloads.
//!
//! For every BSSF configuration exercised by the fig4–fig10 exhibits
//! (plain ⊇, plain ⊆, and the §5.1.3/§5.2.2 smart strategies, at each
//! figure's F/m/d_t), the parallel engine must report **identical
//! candidate sets and identical logical page-access counts** to the serial
//! engine. Instances run at 1/16 of the paper's scale so the whole grid
//! stays fast; the engine code paths are scale-independent.

use setsig::prelude::*;
use setsig_experiments::{EngineConfig, SimDb};
use setsig_workload::{Cardinality, Distribution, WorkloadConfig};

const SCALE: u64 = 16;

fn workload(d_t: u32) -> WorkloadConfig {
    // Mirrors the exhibits' workload(): paper N and V scaled down, same
    // seed layout so instances resemble the published runs.
    WorkloadConfig {
        n_objects: 32_000 / SCALE,
        domain: 13_000 / SCALE,
        cardinality: Cardinality::Fixed(d_t),
        distribution: Distribution::Uniform,
        seed: 0x1993_5160 + d_t as u64,
    }
}

#[derive(Clone, Copy)]
enum Strategy {
    Superset,
    Subset,
    SmartSuperset(usize),
    SmartSubset(usize),
}

fn assert_parity(sim: &SimDb, f: u32, m: u32, strategy: Strategy, d_qs: &[u32], tag: &str) {
    let serial = sim.build_bssf_with(f, m, EngineConfig::serial());
    let parallel = sim.build_bssf_with(
        f,
        m,
        EngineConfig {
            threads: 8,
            ..EngineConfig::serial()
        },
    );
    let mut qg = sim.query_gen(0xF16 + f as u64 + m as u64);
    for &d_q in d_qs {
        for trial in 0..3 {
            let keys: Vec<ElementKey> = qg.random(d_q).into_iter().map(ElementKey::from).collect();
            let with_stats = |b: &setsig::prelude::Bssf| match &strategy {
                Strategy::Superset => {
                    let q = SetQuery::has_subset(keys.clone());
                    let (c, s) = b.candidates_with_stats(&q).unwrap();
                    (c, s.expect("bssf reports per-query stats"))
                }
                Strategy::Subset => {
                    let q = SetQuery::in_subset(keys.clone());
                    let (c, s) = b.candidates_with_stats(&q).unwrap();
                    (c, s.expect("bssf reports per-query stats"))
                }
                Strategy::SmartSuperset(cap) => {
                    let q = SetQuery::has_subset(keys.clone());
                    b.candidates_superset_smart(&q, *cap).unwrap()
                }
                Strategy::SmartSubset(cap) => {
                    let q = SetQuery::in_subset(keys.clone());
                    b.candidates_subset_smart(&q, *cap).unwrap()
                }
            };
            let (cs, ss) = with_stats(&serial);
            let (cp, sp) = with_stats(&parallel);
            assert_eq!(
                cs, cp,
                "{tag}: candidates diverged (D_q={d_q}, trial {trial})"
            );
            assert_eq!(
                ss.logical_pages, sp.logical_pages,
                "{tag}: logical pages diverged (D_q={d_q}, trial {trial})"
            );
            assert_eq!(
                ss.logical_pages, ss.physical_pages,
                "{tag}: serial must not speculate"
            );
            assert!(
                sp.physical_pages >= sp.logical_pages,
                "{tag}: physical < logical"
            );
        }
    }
}

#[test]
fn fig4_and_fig5_superset_configs_are_parity_clean() {
    let sim = SimDb::build(workload(10));
    // fig4: the two (F, m_opt) designs, ⊇ over growing D_q.
    assert_parity(
        &sim,
        250,
        17,
        Strategy::Superset,
        &[1, 2, 5, 10],
        "fig4 F=250",
    );
    assert_parity(
        &sim,
        500,
        35,
        Strategy::Superset,
        &[1, 2, 5, 10],
        "fig4 F=500",
    );
    // fig5: F = 500 with small m.
    for m in 1..=4 {
        assert_parity(&sim, 500, m, Strategy::Superset, &[2, 6], "fig5");
    }
}

#[test]
fn fig6_and_fig7_smart_superset_configs_are_parity_clean() {
    let sim10 = SimDb::build(workload(10));
    assert_parity(
        &sim10,
        250,
        2,
        Strategy::SmartSuperset(2),
        &[2, 5, 10],
        "fig6 F=250",
    );
    assert_parity(
        &sim10,
        500,
        2,
        Strategy::SmartSuperset(2),
        &[2, 5, 10],
        "fig6 F=500",
    );
    let sim100 = SimDb::build(workload(100));
    assert_parity(
        &sim100,
        1000,
        3,
        Strategy::SmartSuperset(3),
        &[5, 20],
        "fig7 F=1000",
    );
    assert_parity(
        &sim100,
        2500,
        3,
        Strategy::SmartSuperset(3),
        &[5, 20],
        "fig7 F=2500",
    );
}

#[test]
fn fig8_subset_configs_are_parity_clean() {
    let sim = SimDb::build(workload(10));
    assert_parity(&sim, 500, 2, Strategy::Subset, &[10, 50, 200], "fig8 BSSF");
    // fig8 also plots SSF; the SSF parallel scan must be byte-identical
    // too.
    let serial = sim.build_ssf_with(500, 2, EngineConfig::serial());
    let parallel = sim.build_ssf_with(
        500,
        2,
        EngineConfig {
            threads: 8,
            ..EngineConfig::serial()
        },
    );
    let mut qg = sim.query_gen(0xF8);
    for d_q in [10u32, 50, 200] {
        let q = SetQuery::in_subset(qg.random(d_q).into_iter().map(ElementKey::from).collect());
        let (cs, ss) = serial.candidates_with_stats(&q).unwrap();
        let (cp, sp) = parallel.candidates_with_stats(&q).unwrap();
        assert_eq!(cs, cp, "fig8 SSF: candidates diverged (D_q={d_q})");
        assert_eq!(
            ss.expect("ssf reports stats").logical_pages,
            sp.expect("ssf reports stats").logical_pages
        );
    }
}

#[test]
fn fig9_and_fig10_smart_subset_configs_are_parity_clean() {
    let sim10 = SimDb::build(workload(10));
    assert_parity(
        &sim10,
        250,
        2,
        Strategy::SmartSubset(100),
        &[10, 50],
        "fig9 F=250",
    );
    assert_parity(
        &sim10,
        500,
        2,
        Strategy::SmartSubset(150),
        &[10, 50],
        "fig9 F=500",
    );
    let sim100 = SimDb::build(workload(100));
    assert_parity(
        &sim100,
        1000,
        3,
        Strategy::SmartSubset(200),
        &[20],
        "fig10 F=1000",
    );
    assert_parity(
        &sim100,
        2500,
        3,
        Strategy::SmartSubset(300),
        &[20],
        "fig10 F=2500",
    );
}
