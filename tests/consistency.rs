//! Property-based cross-crate consistency: on arbitrary databases, SSF,
//! BSSF, NIX and the full scan answer every query identically.

use proptest::prelude::*;
use setsig::nix::Nix;
use setsig::prelude::*;
use std::sync::Arc;

fn run_database(
    sets: &[Vec<u64>],
    deletions: &[usize],
    queries: &[(u8, Vec<u64>)],
) -> Result<(), TestCaseError> {
    let mut db = Database::in_memory();
    let class = db
        .define_class(ClassDef::new(
            "Obj",
            vec![("elems", AttrType::set_of(AttrType::Int))],
        ))
        .unwrap();
    let io = || Arc::clone(db.disk()) as Arc<dyn PageIo>;
    let ssf = Ssf::create(io(), "x", SignatureConfig::new(64, 2).unwrap()).unwrap();
    let bssf = Bssf::create(io(), "x", SignatureConfig::new(64, 2).unwrap()).unwrap();
    let fssf = Fssf::create(io(), "x", FssfConfig::new(64, 8, 2).unwrap()).unwrap();
    let nix = Nix::on_io(io(), "x");
    let fids = [
        db.register_facility(class, "elems", Box::new(ssf)).unwrap(),
        db.register_facility(class, "elems", Box::new(bssf))
            .unwrap(),
        db.register_facility(class, "elems", Box::new(fssf))
            .unwrap(),
        db.register_facility(class, "elems", Box::new(nix)).unwrap(),
    ];

    let mut oids = Vec::new();
    for set in sets {
        let value = Value::Set(set.iter().map(|&e| Value::Int(e as i64)).collect());
        oids.push(db.insert_object(class, vec![value]).unwrap());
    }
    for &d in deletions {
        let victim = oids[d % oids.len()];
        // Ignore double deletions: the model allows them to fail.
        let _ = db.delete_object(victim);
    }

    for (pred, elems) in queries {
        let keys: Vec<ElementKey> = elems.iter().map(|&e| ElementKey::from(e)).collect();
        let q = match pred % 5 {
            0 => SetQuery::has_subset(keys),
            1 => SetQuery::in_subset(keys),
            2 => SetQuery::equals(keys),
            3 => SetQuery::overlaps(keys),
            _ => match keys.into_iter().next() {
                Some(k) => SetQuery::contains(k),
                None => continue,
            },
        };
        let scan = db.scan_set_query(class, "elems", &q).unwrap();
        for &idx in &fids {
            let r = db.execute_set_query(idx, &q).unwrap();
            prop_assert_eq!(
                &r.actual,
                &scan.actual,
                "{} disagrees with scan on {}",
                db.facility(idx).unwrap().name(),
                q.predicate
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn facilities_always_agree_with_full_scan(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0u64..50, 1..6)
                .prop_map(|s| s.into_iter().collect::<Vec<u64>>()),
            1..20,
        ),
        deletions in proptest::collection::vec(0usize..20, 0..4),
        queries in proptest::collection::vec(
            (0u8..5, proptest::collection::btree_set(0u64..50, 1..6)
                .prop_map(|s| s.into_iter().collect::<Vec<u64>>())),
            1..6,
        ),
    ) {
        run_database(&sets, &deletions, &queries)?;
    }
}
