//! Measured page-access costs versus the paper's closed forms, at the
//! paper's exact parameters where cheap and at reduced scale elsewhere.

use setsig::nix::Nix;
use setsig::prelude::*;
use std::sync::Arc;

fn build_sets(n: u64, v: u64, d_t: u32, seed: u64) -> Vec<Vec<u64>> {
    let cfg = WorkloadConfig {
        n_objects: n,
        domain: v,
        cardinality: setsig::workload::Cardinality::Fixed(d_t),
        distribution: setsig::workload::Distribution::Uniform,
        seed,
    };
    SetGenerator::new(cfg).generate_all()
}

fn as_items(sets: &[Vec<u64>]) -> Vec<(Oid, Vec<ElementKey>)> {
    sets.iter()
        .enumerate()
        .map(|(i, s)| {
            (
                Oid::new(i as u64),
                s.iter().map(|&e| ElementKey::from(e)).collect(),
            )
        })
        .collect()
}

#[test]
fn ssf_storage_matches_model_at_paper_scale() {
    // SC_SIG for F = 500 must be exactly 493 pages; + SC_OID = 63.
    let sets = build_sets(32_000, 13_000, 10, 1);
    let disk = Arc::new(Disk::new());
    let io = Arc::clone(&disk) as Arc<dyn PageIo>;
    let mut ssf = Ssf::create(io, "s", SignatureConfig::new(500, 2).unwrap()).unwrap();
    for (oid, set) in as_items(&sets) {
        ssf.insert(oid, &set).unwrap();
    }
    assert_eq!(ssf.signature_pages().unwrap(), 493);
    assert_eq!(ssf.oid_file().storage_pages().unwrap(), 63);
    assert_eq!(ssf.storage_pages().unwrap(), 556);

    let model = SsfModel::new(Params::paper(), 500, 2, 10);
    assert_eq!(model.sc(), 556);
}

#[test]
fn bssf_storage_and_update_costs_match_model_at_paper_scale() {
    let sets = build_sets(32_000, 13_000, 10, 2);
    let disk = Arc::new(Disk::new());
    let io = Arc::clone(&disk) as Arc<dyn PageIo>;
    let mut bssf = Bssf::create(io, "b", SignatureConfig::new(250, 2).unwrap()).unwrap();
    bssf.bulk_load(&as_items(&sets)).unwrap();

    // SC = 1·250 + 63 = 313 (paper §6: "almost same as that of SSF").
    assert_eq!(bssf.storage_pages().unwrap(), 313);
    assert_eq!(BssfModel::new(Params::paper(), 250, 2, 10).sc(), 313);

    // UC_I = F + 1 = 251, exactly.
    let set: Vec<ElementKey> = sets[0].iter().map(|&e| ElementKey::from(e)).collect();
    disk.reset_stats();
    bssf.insert(Oid::new(40_000), &set).unwrap();
    assert_eq!(disk.snapshot().accesses(), 251);

    // UC_D: expected SC_OID/2 reads + 1 write; for the entry just appended
    // (worst case end-of-file) the scan reads all 63 pages + writes 1.
    disk.reset_stats();
    bssf.delete(Oid::new(40_000), &set).unwrap();
    let d = disk.snapshot();
    assert_eq!((d.reads, d.writes), (63, 1));
}

#[test]
fn ssf_scan_cost_is_sc_sig_at_paper_scale() {
    // Retrieval with a never-matching query reads exactly the signature
    // file: Eq. (7) with F_d ≈ 0 and A = 0.
    let sets = build_sets(32_000, 13_000, 10, 3);
    let disk = Arc::new(Disk::new());
    let io = Arc::clone(&disk) as Arc<dyn PageIo>;
    let mut ssf = Ssf::create(io, "s", SignatureConfig::new(500, 35).unwrap()).unwrap();
    for (oid, set) in as_items(&sets) {
        ssf.insert(oid, &set).unwrap();
    }
    disk.reset_stats();
    // m_opt makes false drops negligible; a random 5-element query from
    // outside the domain cannot hit anything.
    let q = SetQuery::has_subset(
        (0..5)
            .map(|i| ElementKey::from(1_000_000 + i as u64))
            .collect(),
    );
    let c = ssf.candidates(&q).unwrap();
    assert!(c.is_empty());
    assert_eq!(disk.snapshot().reads, 493, "full scan of SC_SIG pages");
}

#[test]
fn bssf_superset_reads_m_q_slices_at_paper_scale() {
    let sets = build_sets(32_000, 13_000, 10, 4);
    let disk = Arc::new(Disk::new());
    let io = Arc::clone(&disk) as Arc<dyn PageIo>;
    let mut bssf = Bssf::create(io, "b", SignatureConfig::new(500, 2).unwrap()).unwrap();
    bssf.bulk_load(&as_items(&sets)).unwrap();

    let q = SetQuery::has_subset(vec![ElementKey::from(7u64), ElementKey::from(9_999u64)]);
    let m_q = q.signature(bssf.config()).weight() as u64; // ≤ 4
    disk.reset_stats();
    let c = bssf.candidates(&q).unwrap();
    let reads = disk.snapshot().reads;
    // m_q slice pages (1 page each at N = 32,000) + OID pages for drops.
    let oid_pages = reads - m_q.min(reads);
    assert!(
        oid_pages <= 63,
        "OID look-up bounded by SC_OID (reads {reads}, m_q {m_q})"
    );
    // Candidates are the paper's expected drops: A ≈ 0.017 + false drops
    // F_d·N ≈ 0.0035·32000 ≈ 110 for m=2,D_q=2... loose sanity bound:
    assert!(c.len() < 1200, "drops {}", c.len());
}

#[test]
fn nix_structure_matches_table4_regime_at_paper_scale() {
    // d ≈ 24.6 OIDs per key, rc = 3 (height 2), as §4.3 derives.
    let sets = build_sets(32_000, 13_000, 10, 5);
    let disk = Arc::new(Disk::new());
    let mut nix = Nix::create(Arc::clone(&disk), "n");
    for (oid, set) in as_items(&sets) {
        nix.insert(oid, &set).unwrap();
    }
    assert_eq!(nix.tree().rc_lookup(), 3, "the paper's rc = 3");
    assert_eq!(nix.tree().posting_count(), 320_000);

    // Look-up cost for a D_q = 2 ⊇ query: rc·D_q = 6 reads before drops.
    disk.reset_stats();
    let q = SetQuery::has_subset(vec![ElementKey::from(3u64), ElementKey::from(5u64)]);
    let _ = nix.candidates(&q).unwrap();
    let reads = disk.snapshot().reads;
    assert_eq!(reads, 6, "rc·D_q with no overflow chains");

    nix.tree().check_integrity().unwrap();
}

#[test]
fn smart_strategies_cap_reads_and_stay_sound() {
    // §5.1.3 / §5.2.2: the smart strategies bound the slice reads while the
    // filter stays sound (no false negatives for a known-present target).
    let sets = build_sets(2_000, 1_000, 10, 7);
    let disk = Arc::new(Disk::new());
    let io = Arc::clone(&disk) as Arc<dyn PageIo>;
    let mut bssf = Bssf::create(io, "b", SignatureConfig::new(500, 2).unwrap()).unwrap();
    bssf.bulk_load(&as_items(&sets)).unwrap();

    // Superset smart: query = full target set (10 elements), cap at 2
    // elements → at most 2·m = 4 slice pages instead of up to 20.
    let target_keys: Vec<ElementKey> = sets[55].iter().map(|&e| ElementKey::from(e)).collect();
    let q_sup = SetQuery::has_subset(target_keys.clone());
    disk.reset_stats();
    let (c, scan) = bssf.candidates_superset_smart(&q_sup, 2).unwrap();
    assert!(
        c.oids.contains(&Oid::new(55)),
        "smart ⊇ must keep the true match"
    );
    // At most 2·m = 4 slice pages, plus the OID-file look-up pages (the
    // whole OID file spans ⌈2000/512⌉ = 4 pages).
    assert!(
        scan.logical_pages <= 4 + 4,
        "smart ⊇ charged {} pages",
        scan.logical_pages
    );
    assert_eq!(scan.logical_pages, scan.physical_pages);
    // Full strategy reads more slices and yields a subset of the smart
    // strategy's drops (more slices ANDed → fewer candidates).
    let (full, full_scan) = bssf.candidates_with_stats(&q_sup).unwrap();
    assert!(full_scan.unwrap().logical_pages >= scan.logical_pages);
    for oid in &full.oids {
        assert!(c.oids.contains(oid), "smart drops must cover full drops");
    }

    // Subset smart: cap the 0-slice reads at 40 of the ~480.
    let q_sub = SetQuery::in_subset(target_keys);
    disk.reset_stats();
    let (c, scan) = bssf.candidates_subset_smart(&q_sub, 40).unwrap();
    assert!(
        c.oids.contains(&Oid::new(55)),
        "smart ⊆ must keep the true match"
    );
    // Exactly the 40-slice cap, plus 1–4 OID-file look-up pages.
    assert!(
        scan.logical_pages >= 40 && scan.logical_pages <= 40 + 4,
        "⊆ smart charged {} pages for a 40-slice cap",
        scan.logical_pages
    );
    let (full, full_scan) = bssf.candidates_with_stats(&q_sub).unwrap();
    assert!(full_scan.unwrap().logical_pages >= 40);
    for oid in &full.oids {
        assert!(c.oids.contains(oid), "smart ⊆ drops must cover full drops");
    }
}

#[test]
fn smart_strategies_are_identical_under_parallel_engine() {
    let sets = build_sets(1_500, 800, 10, 8);
    let build = |threads: usize| {
        let disk = Arc::new(Disk::new());
        let io = Arc::clone(&disk) as Arc<dyn PageIo>;
        let mut b = Bssf::create(io, "b", SignatureConfig::new(250, 2).unwrap()).unwrap();
        b.bulk_load(&as_items(&sets)).unwrap();
        b.set_parallelism(threads);
        b
    };
    let serial = build(1);
    let parallel = build(8);
    for t in [3usize, 77, 501] {
        let target: Vec<ElementKey> = sets[t].iter().map(|&e| ElementKey::from(e)).collect();
        let q_sup = SetQuery::has_subset(target.clone());
        let (cs, ss) = serial.candidates_superset_smart(&q_sup, 3).unwrap();
        let (cp, sp) = parallel.candidates_superset_smart(&q_sup, 3).unwrap();
        assert_eq!(cs, cp);
        assert_eq!(ss.logical_pages, sp.logical_pages);
        let q_sub = SetQuery::in_subset(target);
        let (cs, ss) = serial.candidates_subset_smart(&q_sub, 30).unwrap();
        let (cp, sp) = parallel.candidates_subset_smart(&q_sub, 30).unwrap();
        assert_eq!(cs, cp);
        assert_eq!(ss.logical_pages, sp.logical_pages);
    }
}

#[test]
fn cached_engine_serves_hot_slices_without_disk_reads() {
    // Routing slice reads through the buffer pool: the second identical
    // query finds every slice page resident — pool hits, zero disk reads —
    // while the logical page charge stays exactly the serial protocol's.
    let sets = build_sets(2_000, 1_000, 10, 9);
    let disk = Arc::new(Disk::new());
    let mut bssf = Bssf::create_cached(
        Arc::clone(&disk),
        "b",
        SignatureConfig::new(250, 2).unwrap(),
        512,
    )
    .unwrap();
    bssf.bulk_load(&as_items(&sets)).unwrap();
    // The write-through load installed every page; start from a cold pool.
    bssf.buffer_pool().unwrap().clear();

    let q = SetQuery::has_subset(vec![ElementKey::from(7u64), ElementKey::from(423u64)]);
    let (first, first_scan) = bssf.candidates_with_stats(&q).unwrap();
    let first_scan = first_scan.unwrap();
    let cold = bssf.cache_stats().unwrap();
    assert!(cold.misses > 0, "cold scan must reach the disk");

    disk.reset_stats();
    let (second, second_scan) = bssf.candidates_with_stats(&q).unwrap();
    let second_scan = second_scan.unwrap();
    let hot = bssf.cache_stats().unwrap();

    assert_eq!(first, second, "cache must not change answers");
    assert_eq!(
        first_scan, second_scan,
        "logical accounting is cache-independent"
    );
    assert_eq!(
        disk.snapshot().reads,
        0,
        "hot query must be served from the pool"
    );
    assert!(hot.hits > cold.hits, "second query must hit the pool");

    // Same story for the SSF full scan.
    let disk2 = Arc::new(Disk::new());
    let mut ssf = Ssf::create_cached(
        Arc::clone(&disk2),
        "s",
        SignatureConfig::new(500, 2).unwrap(),
        128,
    )
    .unwrap();
    for (oid, set) in as_items(&sets[..500]) {
        ssf.insert(oid, &set).unwrap();
    }
    let q = SetQuery::has_subset(vec![ElementKey::from(11u64)]);
    let first = ssf.candidates(&q).unwrap();
    disk2.reset_stats();
    let second = ssf.candidates(&q).unwrap();
    assert_eq!(first, second);
    assert_eq!(
        disk2.snapshot().reads,
        0,
        "hot SSF scan must be pool-resident"
    );
    assert!(ssf.cache_stats().unwrap().hits > 0);
}

#[test]
fn measured_superset_rc_tracks_model_at_reduced_scale() {
    // Whole-pipeline fidelity: measured RC within 2× of the model's
    // prediction across D_q (model and instance at the same 1/8 scale).
    let p = Params::scaled(4000, 1625);
    let sets = build_sets(p.n, p.v, 10, 6);
    let disk = Arc::new(Disk::new());
    let io = Arc::clone(&disk) as Arc<dyn PageIo>;
    let mut bssf = Bssf::create(io, "b", SignatureConfig::new(500, 2).unwrap()).unwrap();
    bssf.bulk_load(&as_items(&sets)).unwrap();
    let model = BssfModel::new(p, 500, 2, 10);

    let mut qg = QueryGen::new(p.v, 77);
    for d_q in [1u32, 2, 4, 8] {
        let trials = 8;
        let mut measured = 0u64;
        for _ in 0..trials {
            let q =
                SetQuery::has_subset(qg.random(d_q).into_iter().map(ElementKey::from).collect());
            disk.reset_stats();
            let c = bssf.candidates(&q).unwrap();
            // + one object fetch per candidate (P_p = P_s = 1).
            measured += disk.snapshot().accesses() + c.len() as u64;
        }
        let measured = measured as f64 / trials as f64;
        let predicted = model.rc_superset(d_q);
        assert!(
            measured < predicted * 2.0 + 12.0 && predicted < measured * 2.0 + 12.0,
            "D_q = {d_q}: measured {measured:.1} vs model {predicted:.1}"
        );
    }
}
