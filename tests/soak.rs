//! Soak test: replay a long mixed trace (inserts, deletes, queries)
//! against all four facilities simultaneously and check they agree with an
//! in-memory model after every query.

use setsig::nix::Nix;
use setsig::prelude::*;
use setsig::workload::{generate_trace, TraceConfig, TraceOp};
use std::collections::BTreeMap;
use std::sync::Arc;

fn element_keys(set: &[u64]) -> Vec<ElementKey> {
    set.iter().map(|&e| ElementKey::from(e)).collect()
}

#[test]
fn facilities_survive_a_long_mixed_trace() {
    let cfg = TraceConfig {
        domain: 120,
        d_t: 6,
        d_q_superset: 2,
        d_q_subset: 12,
        weights: [30, 10, 30, 30],
        length: 600,
        seed: 0x50a6,
    };
    let trace = generate_trace(&cfg);

    let disk = Arc::new(Disk::new());
    let io = || Arc::clone(&disk) as Arc<dyn PageIo>;
    let mut ssf = Ssf::create(io(), "s", SignatureConfig::new(64, 2).unwrap()).unwrap();
    let mut bssf = Bssf::create(io(), "b", SignatureConfig::new(64, 2).unwrap()).unwrap();
    let mut fssf = Fssf::create(io(), "f", FssfConfig::new(64, 8, 2).unwrap()).unwrap();
    let mut nix = Nix::on_io(io(), "n");

    // In-memory ground truth: oid → set.
    let mut model: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut next = 0u64;

    for (step, op) in trace.iter().enumerate() {
        match op {
            TraceOp::Insert { set } => {
                let oid = Oid::new(next);
                next += 1;
                let keys = element_keys(set);
                ssf.insert(oid, &keys).unwrap();
                bssf.insert(oid, &keys).unwrap();
                fssf.insert(oid, &keys).unwrap();
                nix.insert(oid, &keys).unwrap();
                model.insert(oid.raw(), set.clone());
            }
            TraceOp::Delete { victim } => {
                if model.is_empty() {
                    continue;
                }
                let idx = (*victim as usize) % model.len();
                let (&raw, set) = model.iter().nth(idx).map(|(k, v)| (k, v.clone())).unwrap();
                let keys = element_keys(&set);
                let oid = Oid::new(raw);
                ssf.delete(oid, &keys).unwrap();
                bssf.delete(oid, &keys).unwrap();
                fssf.delete(oid, &keys).unwrap();
                nix.delete(oid, &keys).unwrap();
                model.remove(&raw);
            }
            TraceOp::SupersetQuery { query } | TraceOp::SubsetQuery { query } => {
                let superset = matches!(op, TraceOp::SupersetQuery { .. });
                let q = if superset {
                    SetQuery::has_subset(element_keys(query))
                } else {
                    SetQuery::in_subset(element_keys(query))
                };
                // The true answers from the model.
                let expected: Vec<u64> = model
                    .iter()
                    .filter(|(_, set)| {
                        if superset {
                            query.iter().all(|e| set.contains(e))
                        } else {
                            set.iter().all(|e| query.contains(e))
                        }
                    })
                    .map(|(&oid, _)| oid)
                    .collect();
                for (name, candidates) in [
                    ("SSF", ssf.candidates(&q).unwrap()),
                    ("BSSF", bssf.candidates(&q).unwrap()),
                    ("FSSF", fssf.candidates(&q).unwrap()),
                    ("NIX", nix.candidates(&q).unwrap()),
                ] {
                    // One-sided filter: every true answer is a candidate.
                    for e in &expected {
                        assert!(
                            candidates.oids.contains(&Oid::new(*e)),
                            "step {step}: {name} missed oid {e} on {}",
                            q.predicate
                        );
                    }
                    // And no candidate is a deleted object.
                    for oid in &candidates.oids {
                        assert!(
                            model.contains_key(&oid.raw()),
                            "step {step}: {name} returned deleted oid {oid}"
                        );
                    }
                }
            }
        }
    }
    // Structural invariants held to the end.
    nix.tree().check_integrity().unwrap();
    assert_eq!(ssf.indexed_count(), model.len() as u64);
    assert_eq!(bssf.indexed_count(), model.len() as u64);
    assert_eq!(fssf.indexed_count(), model.len() as u64);
    assert_eq!(nix.indexed_count(), model.len() as u64);
}
