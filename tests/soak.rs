//! Soak test: replay a long mixed trace (inserts, deletes, queries)
//! against all four facilities simultaneously and check they agree with an
//! in-memory model after every query.

use setsig::nix::Nix;
use setsig::prelude::*;
use setsig::workload::{generate_trace, TraceConfig, TraceOp};
use std::collections::BTreeMap;
use std::sync::Arc;

fn element_keys(set: &[u64]) -> Vec<ElementKey> {
    set.iter().map(|&e| ElementKey::from(e)).collect()
}

#[test]
fn facilities_survive_a_long_mixed_trace() {
    let cfg = TraceConfig {
        domain: 120,
        d_t: 6,
        d_q_superset: 2,
        d_q_subset: 12,
        weights: [30, 10, 30, 30],
        length: 600,
        seed: 0x50a6,
    };
    let trace = generate_trace(&cfg);

    let disk = Arc::new(Disk::new());
    let io = || Arc::clone(&disk) as Arc<dyn PageIo>;
    let mut ssf = Ssf::create(io(), "s", SignatureConfig::new(64, 2).unwrap()).unwrap();
    let mut bssf = Bssf::create(io(), "b", SignatureConfig::new(64, 2).unwrap()).unwrap();
    let mut fssf = Fssf::create(io(), "f", FssfConfig::new(64, 8, 2).unwrap()).unwrap();
    let mut nix = Nix::on_io(io(), "n");

    // In-memory ground truth: oid → set.
    let mut model: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut next = 0u64;

    for (step, op) in trace.iter().enumerate() {
        match op {
            TraceOp::Insert { set } => {
                let oid = Oid::new(next);
                next += 1;
                let keys = element_keys(set);
                ssf.insert(oid, &keys).unwrap();
                bssf.insert(oid, &keys).unwrap();
                fssf.insert(oid, &keys).unwrap();
                nix.insert(oid, &keys).unwrap();
                model.insert(oid.raw(), set.clone());
            }
            TraceOp::Delete { victim } => {
                if model.is_empty() {
                    continue;
                }
                let idx = (*victim as usize) % model.len();
                let (&raw, set) = model.iter().nth(idx).map(|(k, v)| (k, v.clone())).unwrap();
                let keys = element_keys(&set);
                let oid = Oid::new(raw);
                ssf.delete(oid, &keys).unwrap();
                bssf.delete(oid, &keys).unwrap();
                fssf.delete(oid, &keys).unwrap();
                nix.delete(oid, &keys).unwrap();
                model.remove(&raw);
            }
            TraceOp::SupersetQuery { query } | TraceOp::SubsetQuery { query } => {
                let superset = matches!(op, TraceOp::SupersetQuery { .. });
                let q = if superset {
                    SetQuery::has_subset(element_keys(query))
                } else {
                    SetQuery::in_subset(element_keys(query))
                };
                // The true answers from the model.
                let expected: Vec<u64> = model
                    .iter()
                    .filter(|(_, set)| {
                        if superset {
                            query.iter().all(|e| set.contains(e))
                        } else {
                            set.iter().all(|e| query.contains(e))
                        }
                    })
                    .map(|(&oid, _)| oid)
                    .collect();
                for (name, candidates) in [
                    ("SSF", ssf.candidates(&q).unwrap()),
                    ("BSSF", bssf.candidates(&q).unwrap()),
                    ("FSSF", fssf.candidates(&q).unwrap()),
                    ("NIX", nix.candidates(&q).unwrap()),
                ] {
                    // One-sided filter: every true answer is a candidate.
                    for e in &expected {
                        assert!(
                            candidates.oids.contains(&Oid::new(*e)),
                            "step {step}: {name} missed oid {e} on {}",
                            q.predicate
                        );
                    }
                    // And no candidate is a deleted object.
                    for oid in &candidates.oids {
                        assert!(
                            model.contains_key(&oid.raw()),
                            "step {step}: {name} returned deleted oid {oid}"
                        );
                    }
                }
            }
        }
    }
    // Structural invariants held to the end.
    nix.tree().check_integrity().unwrap();
    assert_eq!(ssf.indexed_count(), model.len() as u64);
    assert_eq!(bssf.indexed_count(), model.len() as u64);
    assert_eq!(fssf.indexed_count(), model.len() as u64);
    assert_eq!(nix.indexed_count(), model.len() as u64);
}

/// Bursty admission soak: the service sits idle, takes a spike of
/// queries far deeper than the worker pool, drains it, and repeats.
/// Every query in every burst must be answered exactly once and
/// correctly; the queue-depth gauge must peak during the spike and read
/// zero once drained; per-shard counters must account for every task.
#[test]
fn service_survives_bursty_admission_and_drains_its_queue() {
    use setsig::obs::Recorder;
    use setsig::service::{QueryService, ServiceConfig};

    let shards = 4usize;
    let disk = Arc::new(Disk::new());
    let sig = SignatureConfig::new(64, 2).unwrap();
    let mut facilities: Vec<Bssf> = (0..shards)
        .map(|i| {
            Bssf::create(
                Arc::clone(&disk) as Arc<dyn PageIo>,
                &format!("burst{i}"),
                sig,
            )
            .unwrap()
        })
        .collect();
    // Pre-seed each facility empty; inserts go through the service so
    // placement follows the hash.
    let rec = Arc::new(Recorder::new());
    let svc = Arc::new(
        QueryService::with_recorder(
            std::mem::take(&mut facilities),
            ServiceConfig::new(shards)
                .with_queue_depth(8)
                .with_workers(3),
            Some(Arc::clone(&rec)),
        )
        .unwrap(),
    );
    for i in 0..300u64 {
        let keys: Vec<ElementKey> = (0..4).map(|j| ElementKey::from(i % 40 + j)).collect();
        svc.insert(Oid::new(i), &keys).unwrap();
    }

    // Ground truth per probe element, computed once.
    let expected = |e: u64| -> Vec<Oid> {
        (0..300u64)
            .filter(|i| {
                let lo = i % 40;
                e >= lo && e < lo + 4
            })
            .map(Oid::new)
            .collect()
    };

    let bursts = 5usize;
    let burst_size = 40usize;
    for burst in 0..bursts {
        // Idle gap: the pool has nothing in flight between bursts.
        let snap = rec.registry().snapshot();
        assert_eq!(
            snap.get_gauge("service.queue_depth"),
            Some(0),
            "queue not drained before burst {burst}"
        );

        // Spike: many callers submit at once, 5× deeper than the queue.
        let handles: Vec<_> = (0..burst_size)
            .map(|i| {
                let svc = Arc::clone(&svc);
                std::thread::spawn(move || {
                    let e = (i % 20) as u64;
                    let q = SetQuery::has_subset(vec![ElementKey::from(e)]);
                    let (set, stats) = svc.query(&q).unwrap();
                    (e, set, stats)
                })
            })
            .collect();
        for h in handles {
            let (e, set, stats) = h.join().expect("burst caller");
            // The signature filter never loses a true answer, and the
            // merge never duplicates a candidate across shards.
            for oid in expected(e) {
                assert!(
                    set.oids.contains(&oid),
                    "burst {burst} dropped true answer {oid} for {e}"
                );
            }
            for w in set.oids.windows(2) {
                assert!(w[0] < w[1], "burst {burst} duplicated candidate {}", w[0]);
            }
            assert!(stats.is_some(), "burst {burst} lost merged stats");
        }
    }

    let snap = rec.registry().snapshot();
    // No query lost or answered twice: shard counters account for every
    // task exactly once — (bursts × burst_size) queries × shards tasks.
    let total_tasks: u64 = (0..shards)
        .map(|i| {
            snap.get_counter(&format!("service.shard{i}.queries"))
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(total_tasks, (bursts * burst_size * shards) as u64);
    let adm = snap
        .get_histogram("service.admission_ns")
        .expect("admission histogram");
    assert_eq!(adm.count, (bursts * burst_size * shards) as u64);
    // The spike was visible (queue backed up beyond a single batch) and
    // fully drained (depth back to zero, nothing in flight).
    assert!(
        snap.get_gauge("service.queue_depth_peak").unwrap_or(0) > shards as i64,
        "burst never backed up the queue"
    );
    assert_eq!(snap.get_gauge("service.queue_depth"), Some(0));
    for i in 0..shards {
        assert_eq!(
            snap.get_gauge(&format!("service.shard{i}.inflight")),
            Some(0),
            "shard {i} left work in flight"
        );
    }
}
