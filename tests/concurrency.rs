//! Concurrent read paths: facilities are `&self` for queries and the disk
//! is internally synchronized, so many threads can query the same
//! structures simultaneously and must all see consistent answers.

use setsig::nix::Nix;
use setsig::prelude::*;
use setsig::workload::{generate_trace, TraceConfig, TraceOp};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

#[test]
fn parallel_queries_agree_with_serial_answers() {
    let disk = Arc::new(Disk::new());
    let io = || Arc::clone(&disk) as Arc<dyn PageIo>;
    let mut bssf = Bssf::create(io(), "b", SignatureConfig::new(128, 2).unwrap()).unwrap();
    let mut nix = Nix::on_io(io(), "n");
    let items: Vec<(Oid, Vec<ElementKey>)> = (0..1000u64)
        .map(|i| {
            (
                Oid::new(i),
                (0..5).map(|j| ElementKey::from(i * 3 + j)).collect(),
            )
        })
        .collect();
    bssf.bulk_load(&items).unwrap();
    for (oid, set) in &items {
        nix.insert(*oid, set).unwrap();
    }
    let bssf = Arc::new(bssf);
    let nix = Arc::new(nix);

    // Serial ground truth.
    let queries: Vec<SetQuery> = (0..16u64)
        .map(|t| SetQuery::has_subset(vec![ElementKey::from(t * 50), ElementKey::from(t * 50 + 1)]))
        .collect();
    let expected: Vec<_> = queries
        .iter()
        .map(|q| bssf.candidates(q).unwrap())
        .collect();

    let handles: Vec<_> = queries
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, q)| {
            let bssf = Arc::clone(&bssf);
            let nix = Arc::clone(&nix);
            std::thread::spawn(move || {
                let mut results = Vec::new();
                for _ in 0..10 {
                    results.push((bssf.candidates(&q).unwrap(), nix.candidates(&q).unwrap()));
                }
                (i, results)
            })
        })
        .collect();

    for h in handles {
        let (i, results) = h.join().expect("no panics under concurrency");
        for (b, n) in results {
            assert_eq!(b, expected[i], "BSSF thread {i} diverged");
            // NIX is exact on ⊇, so its candidates are the true answers —
            // a subset of BSSF's drops.
            for oid in &n.oids {
                assert!(b.oids.contains(oid));
            }
        }
    }
}

#[test]
fn parallel_engine_matches_serial_sets_and_counts() {
    // The tentpole invariant, end to end: a BSSF with 8 scan workers must
    // report byte-identical candidate sets and identical logical
    // page-access counts to the serial engine, on every predicate shape.
    let items: Vec<(Oid, Vec<ElementKey>)> = (0..2000u64)
        .map(|i| {
            (
                Oid::new(i),
                (0..6).map(|j| ElementKey::from(i * 5 + j)).collect(),
            )
        })
        .collect();
    let build = |threads: usize| {
        let disk = Arc::new(Disk::new());
        let io = Arc::clone(&disk) as Arc<dyn PageIo>;
        let mut b = Bssf::create(io, "p", SignatureConfig::new(256, 3).unwrap()).unwrap();
        b.bulk_load(&items).unwrap();
        b.set_parallelism(threads);
        (disk, b)
    };
    let (serial_disk, serial) = build(1);
    let (_par_disk, parallel) = build(8);

    let mut queries: Vec<SetQuery> = (0..12u64)
        .flat_map(|t| {
            let base = t * 160;
            vec![
                SetQuery::has_subset(vec![
                    ElementKey::from(base * 5),
                    ElementKey::from(base * 5 + 1),
                ]),
                SetQuery::in_subset((0..8).map(|j| ElementKey::from(base * 5 + j)).collect()),
                SetQuery::equals((0..6).map(|j| ElementKey::from(base * 5 + j)).collect()),
                SetQuery::overlaps(vec![ElementKey::from(base * 5 + 2)]),
            ]
        })
        .collect();
    // A miss query so the superset early exit (and its speculation
    // window) is exercised.
    queries.push(SetQuery::has_subset(
        (0..6)
            .map(|j| ElementKey::from(10_000_000 + j))
            .collect::<Vec<ElementKey>>(),
    ));

    for q in &queries {
        serial_disk.reset_stats();
        let (cs, ss) = serial.candidates_with_stats(q).unwrap();
        let ss = ss.expect("bssf reports per-query stats");
        let (cp, sp) = parallel.candidates_with_stats(q).unwrap();
        let sp = sp.expect("bssf reports per-query stats");
        assert_eq!(cs, cp, "candidate sets diverged on {:?}", q.predicate);
        assert_eq!(
            ss.logical_pages, sp.logical_pages,
            "logical page counts diverged on {:?}",
            q.predicate
        );
        // On the serial engine the logical charge IS the disk traffic of
        // the filtering stage (drop resolution adds OID-file reads on top).
        assert_eq!(ss.logical_pages, ss.physical_pages);
        assert!(serial_disk.snapshot().reads >= ss.physical_pages);
        assert!(
            sp.physical_pages >= sp.logical_pages,
            "parallel physical can only overshoot"
        );
    }
}

#[test]
fn parallel_engine_is_safe_under_concurrent_callers() {
    // Queries on a parallel-engined BSSF issued from many caller threads at
    // once: nested scoped-thread fan-out must stay correct.
    let items: Vec<(Oid, Vec<ElementKey>)> = (0..500u64)
        .map(|i| {
            (
                Oid::new(i),
                (0..4).map(|j| ElementKey::from(i * 7 + j)).collect(),
            )
        })
        .collect();
    let disk = Arc::new(Disk::new());
    let io = Arc::clone(&disk) as Arc<dyn PageIo>;
    let mut bssf = Bssf::create(io, "c", SignatureConfig::new(128, 2).unwrap()).unwrap();
    bssf.bulk_load(&items).unwrap();
    bssf.set_parallelism(4);
    let bssf = Arc::new(bssf);

    let queries: Vec<SetQuery> = (0..8u64)
        .map(|t| SetQuery::has_subset(vec![ElementKey::from(t * 70 * 7)]))
        .collect();
    let expected: Vec<_> = queries
        .iter()
        .map(|q| bssf.candidates(q).unwrap())
        .collect();
    let handles: Vec<_> = queries
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, q)| {
            let b = Arc::clone(&bssf);
            std::thread::spawn(move || (i, b.candidates(&q).unwrap()))
        })
        .collect();
    for h in handles {
        let (i, got) = h.join().expect("no panics under concurrency");
        assert_eq!(got, expected[i], "caller thread {i} diverged");
    }
}

#[test]
fn concurrent_queries_each_observe_their_own_scan_stats() {
    // Regression for the shared-counter race: two queries with very
    // different page footprints run simultaneously on one facility, many
    // times over. Every call must report exactly the stats of its own
    // scan — equal to a serial baseline — never a blend of both.
    let items: Vec<(Oid, Vec<ElementKey>)> = (0..3000u64)
        .map(|i| {
            (
                Oid::new(i),
                (0..5).map(|j| ElementKey::from(i * 9 + j)).collect(),
            )
        })
        .collect();
    for threads in [1usize, 4] {
        let disk = Arc::new(Disk::new());
        let io = Arc::clone(&disk) as Arc<dyn PageIo>;
        let mut b = Bssf::create(io, "r", SignatureConfig::new(256, 3).unwrap()).unwrap();
        b.bulk_load(&items).unwrap();
        b.set_parallelism(threads);
        let bssf = Arc::new(b);

        // A cheap query (superset, early exit on a miss) and an expensive
        // one (subset reads every zero slice of the query signature).
        let q_cheap = SetQuery::has_subset(
            (0..5)
                .map(|j| ElementKey::from(20_000_000 + j))
                .collect::<Vec<ElementKey>>(),
        );
        let q_costly = SetQuery::in_subset((0..9).map(ElementKey::from).collect());
        let baselines: Vec<_> = [&q_cheap, &q_costly]
            .iter()
            .map(|q| {
                let (set, stats) = bssf.candidates_with_stats(q).unwrap();
                (set, stats.expect("bssf reports per-query stats"))
            })
            .collect();
        assert_ne!(
            baselines[0].1.logical_pages, baselines[1].1.logical_pages,
            "queries must differ in cost for the race to be observable"
        );

        let handles: Vec<_> = [q_cheap, q_costly]
            .into_iter()
            .enumerate()
            .map(|(i, q)| {
                let b = Arc::clone(&bssf);
                std::thread::spawn(move || {
                    let mut out = Vec::new();
                    for _ in 0..25 {
                        let (set, stats) = b.candidates_with_stats(&q).unwrap();
                        out.push((set, stats.expect("bssf reports per-query stats")));
                    }
                    (i, out)
                })
            })
            .collect();
        for h in handles {
            let (i, runs) = h.join().expect("no panics under concurrency");
            let (want_set, want_stats) = &baselines[i];
            for (set, stats) in runs {
                assert_eq!(&set, want_set, "query {i} candidates diverged");
                assert_eq!(
                    stats.logical_pages, want_stats.logical_pages,
                    "query {i} logical pages blended with the other query \
                     (threads={threads})"
                );
                assert!(stats.physical_pages >= stats.logical_pages);
            }
        }
    }
}

#[test]
fn concurrent_io_accounting_is_exact() {
    // Counter totals must equal the sum of per-thread work even under
    // contention.
    let disk = Arc::new(Disk::new());
    let f = disk.create_file("t");
    disk.extend_to(f, 4).unwrap();
    disk.reset_stats();
    let threads = 8;
    let reads_each = 500;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let d = Arc::clone(&disk);
            std::thread::spawn(move || {
                for i in 0..reads_each {
                    let _ = d.read_page(f, (i % 4) as u32).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(disk.snapshot().reads, threads * reads_each);
}

/// A trace op with its victims pre-resolved, so the sharded service and
/// the serial oracle replay *the same* concrete operations.
enum ResolvedOp {
    Insert(Oid, Vec<u64>),
    Delete(Oid, Vec<u64>),
    Superset(Vec<u64>),
    Subset(Vec<u64>),
}

/// The oracle differential: a randomized mixed trace (inserts, deletes,
/// queries) runs against a 4-shard BSSF query service with the chunk's
/// mutations applied from concurrent writer threads while a reader
/// hammers the pool; at every quiescent point the chunk's queries are
/// answered by both the service and a serial single-file oracle that
/// replayed the identical op-log, and the candidate sets must agree
/// exactly — a BSSF match depends only on the object's signature, never
/// on shard placement or admission order.
#[test]
fn sharded_service_agrees_with_a_serial_oracle_at_quiescent_points() {
    use setsig::service::{QueryService, ServiceConfig};

    let trace = generate_trace(&TraceConfig {
        domain: 100,
        d_t: 5,
        d_q_superset: 2,
        d_q_subset: 10,
        weights: [35, 10, 30, 25],
        length: 400,
        seed: 0x0_5ac1e,
    });

    // Resolve Delete victims against a serial model up front: both sides
    // then execute byte-identical op-logs.
    let mut model: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut next = 0u64;
    let mut ops: Vec<ResolvedOp> = Vec::new();
    for op in &trace {
        match op {
            TraceOp::Insert { set } => {
                let oid = Oid::new(next);
                next += 1;
                model.insert(oid.raw(), set.clone());
                ops.push(ResolvedOp::Insert(oid, set.clone()));
            }
            TraceOp::Delete { victim } => {
                if model.is_empty() {
                    continue;
                }
                let idx = (*victim as usize) % model.len();
                let (&raw, set) = model.iter().nth(idx).map(|(k, v)| (k, v.clone())).unwrap();
                model.remove(&raw);
                ops.push(ResolvedOp::Delete(Oid::new(raw), set));
            }
            TraceOp::SupersetQuery { query } => ops.push(ResolvedOp::Superset(query.clone())),
            TraceOp::SubsetQuery { query } => ops.push(ResolvedOp::Subset(query.clone())),
        }
    }

    let sig = || SignatureConfig::new(64, 2).unwrap();
    let keys =
        |set: &[u64]| -> Vec<ElementKey> { set.iter().map(|&e| ElementKey::from(e)).collect() };

    let service_disk = Arc::new(Disk::new());
    let shards = 4usize;
    let facilities: Vec<Bssf> = (0..shards)
        .map(|i| {
            Bssf::create(
                Arc::clone(&service_disk) as Arc<dyn PageIo>,
                &format!("svc{i}"),
                sig(),
            )
            .unwrap()
        })
        .collect();
    let svc = Arc::new(
        QueryService::new(facilities, ServiceConfig::new(shards).with_queue_depth(16)).unwrap(),
    );
    let mut oracle =
        Bssf::create(Arc::new(Disk::new()) as Arc<dyn PageIo>, "oracle", sig()).unwrap();

    let probe = SetQuery::has_subset(vec![ElementKey::from(1u64)]);
    let mut ever_inserted: BTreeSet<u64> = BTreeSet::new();

    for chunk in ops.chunks(50) {
        // Split the chunk's mutations across two writers by OID, so
        // per-object order (insert before its delete) is preserved while
        // the writers genuinely race on the shard locks.
        let mut lanes: [Vec<(bool, Oid, Vec<u64>)>; 2] = [Vec::new(), Vec::new()];
        for op in chunk {
            match op {
                ResolvedOp::Insert(oid, set) => {
                    ever_inserted.insert(oid.raw());
                    lanes[(oid.raw() % 2) as usize].push((true, *oid, set.clone()));
                }
                ResolvedOp::Delete(oid, set) => {
                    lanes[(oid.raw() % 2) as usize].push((false, *oid, set.clone()));
                }
                _ => {}
            }
        }
        let writers: Vec<_> = lanes
            .into_iter()
            .map(|lane| {
                let svc = Arc::clone(&svc);
                std::thread::spawn(move || {
                    for (is_insert, oid, set) in lane {
                        let keys: Vec<ElementKey> =
                            set.iter().map(|&e| ElementKey::from(e)).collect();
                        if is_insert {
                            svc.insert(oid, &keys).unwrap();
                        } else {
                            svc.delete(oid, &keys).unwrap();
                        }
                    }
                })
            })
            .collect();
        let reader = {
            let svc = Arc::clone(&svc);
            let probe = probe.clone();
            let known = ever_inserted.clone();
            std::thread::spawn(move || {
                for _ in 0..15 {
                    let (set, _) = svc.query(&probe).unwrap();
                    // Mid-churn answers are transient but never invented:
                    // sorted, deduplicated, and only ever-inserted OIDs.
                    for w in set.oids.windows(2) {
                        assert!(w[0] < w[1], "duplicated candidate {}", w[0]);
                    }
                    for oid in &set.oids {
                        assert!(known.contains(&oid.raw()), "phantom candidate {oid}");
                    }
                }
            })
        };
        for w in writers {
            w.join().expect("writer");
        }
        reader.join().expect("reader");

        // Quiescent point: the oracle replays the identical mutations
        // serially, then both sides answer the chunk's queries.
        for op in chunk {
            match op {
                ResolvedOp::Insert(oid, set) => oracle.insert(*oid, &keys(set)).unwrap(),
                ResolvedOp::Delete(oid, set) => oracle.delete(*oid, &keys(set)).unwrap(),
                _ => {}
            }
        }
        for (i, op) in chunk.iter().enumerate() {
            let q = match op {
                ResolvedOp::Superset(query) => SetQuery::has_subset(keys(query)),
                ResolvedOp::Subset(query) => SetQuery::in_subset(keys(query)),
                _ => continue,
            };
            let (sharded, stats) = svc.query(&q).unwrap();
            let serial = oracle.candidates(&q).unwrap();
            assert_eq!(
                sharded.oids, serial.oids,
                "sharded service diverged from serial oracle at op {i} ({})",
                q.predicate
            );
            assert!(stats.is_some(), "merged stats dropped at op {i}");
        }
    }

    // End state: both sides hold exactly the surviving population.
    assert_eq!(svc.router().total_indexed(), model.len() as u64);
    assert_eq!(oracle.indexed_count(), model.len() as u64);
}
