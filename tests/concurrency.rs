//! Concurrent read paths: facilities are `&self` for queries and the disk
//! is internally synchronized, so many threads can query the same
//! structures simultaneously and must all see consistent answers.

use setsig::nix::Nix;
use setsig::prelude::*;
use std::sync::Arc;

#[test]
fn parallel_queries_agree_with_serial_answers() {
    let disk = Arc::new(Disk::new());
    let io = || Arc::clone(&disk) as Arc<dyn PageIo>;
    let mut bssf = Bssf::create(io(), "b", SignatureConfig::new(128, 2).unwrap()).unwrap();
    let mut nix = Nix::on_io(io(), "n");
    let items: Vec<(Oid, Vec<ElementKey>)> = (0..1000u64)
        .map(|i| {
            (Oid::new(i), (0..5).map(|j| ElementKey::from(i * 3 + j)).collect())
        })
        .collect();
    bssf.bulk_load(&items).unwrap();
    for (oid, set) in &items {
        nix.insert(*oid, set).unwrap();
    }
    let bssf = Arc::new(bssf);
    let nix = Arc::new(nix);

    // Serial ground truth.
    let queries: Vec<SetQuery> = (0..16u64)
        .map(|t| SetQuery::has_subset(vec![ElementKey::from(t * 50), ElementKey::from(t * 50 + 1)]))
        .collect();
    let expected: Vec<_> = queries.iter().map(|q| bssf.candidates(q).unwrap()).collect();

    let handles: Vec<_> = queries
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, q)| {
            let bssf = Arc::clone(&bssf);
            let nix = Arc::clone(&nix);
            std::thread::spawn(move || {
                let mut results = Vec::new();
                for _ in 0..10 {
                    results.push((bssf.candidates(&q).unwrap(), nix.candidates(&q).unwrap()));
                }
                (i, results)
            })
        })
        .collect();

    for h in handles {
        let (i, results) = h.join().expect("no panics under concurrency");
        for (b, n) in results {
            assert_eq!(b, expected[i], "BSSF thread {i} diverged");
            // NIX is exact on ⊇, so its candidates are the true answers —
            // a subset of BSSF's drops.
            for oid in &n.oids {
                assert!(b.oids.contains(oid));
            }
        }
    }
}

#[test]
fn concurrent_io_accounting_is_exact() {
    // Counter totals must equal the sum of per-thread work even under
    // contention.
    let disk = Arc::new(Disk::new());
    let f = disk.create_file("t");
    disk.extend_to(f, 4).unwrap();
    disk.reset_stats();
    let threads = 8;
    let reads_each = 500;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let d = Arc::clone(&disk);
            std::thread::spawn(move || {
                for i in 0..reads_each {
                    let _ = d.read_page(f, (i % 4) as u32).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(disk.snapshot().reads, threads * reads_each);
}
